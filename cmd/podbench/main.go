// Command podbench regenerates the POD paper's evaluation artifacts.
//
// Usage:
//
//	podbench [-scale f] [-workers n] [-cpuprofile f] [-memprofile f]
//	         [-bench-json f] [-bench-label s]
//	         [-metrics-out f] [-metrics-prom f] [-trace-sample n]
//	         [experiment ...]
//
// Experiments: table1 table2 fig1 fig2 fig3 fig8 fig9 fig10 fig11
// overhead all (default: all), plus the on-demand "capacity"
// (background-dedup reclamation), "streams" (per-stream index-cache
// apportionment), and "chunking" (fixed4k vs gear vs seqcdc on the
// shifted-content trace) experiments — excluded from "all" so the
// default artifact set matches the paper's engine matrix. Scale 1.0
// replays the paper's full request counts; smaller scales subsample
// proportionally.
//
// The profiling flags measure the harness itself (how fast the
// experiments regenerate), never the simulated system: -cpuprofile and
// -memprofile write pprof profiles, -bench-json writes a perf
// trajectory with per-experiment wall time, allocation counts, and
// peak RSS.
//
// The observability flags expose the simulated system instead:
// -metrics-out / -metrics-prom write the merged metrics snapshot of
// every replay (per-phase latency histograms, substrate gauges) as
// JSON / Prometheus text; -trace-sample n samples every nth measured
// request of each replay with its phase timeline into the snapshot.
// With -bench-json, per-phase histogram summaries additionally join the
// trajectory as a "phases" entry, so BENCH_replay.json carries the
// breakdown alongside wall-clock numbers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/pod-dedup/pod/internal/experiments"
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/perf"
)

var allExperiments = []string{"table1", "table2", "fig1", "fig2", "fig3", "fig8", "fig9",
	"fig10", "fig11", "overhead", "raw", "schemes", "ablations"}

func main() {
	// The replay working set is dominated by long-lived index and map
	// structures, so the default GOGC=100 re-traces that stable heap
	// far more often than it reclaims anything. A modestly relaxed target
	// wins ~4% wall; anything much larger backfires in kernel time
	// faulting in fresh heap pages. Honored only when GOGC is unset.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(200)
	}
	scale := flag.Float64("scale", 1.0, "trace scale (1.0 = paper request counts)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel replays")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	benchJSON := flag.String("bench-json", "", "write a perf trajectory (per-experiment wall/allocs/RSS) to this file")
	benchLabel := flag.String("bench-label", "run", "label recorded in the -bench-json trajectory")
	metricsOut := flag.String("metrics-out", "", "write the merged replay metrics snapshot as JSON to this file")
	metricsProm := flag.String("metrics-prom", "", "write the merged replay metrics snapshot as Prometheus text to this file")
	traceSample := flag.Int("trace-sample", 0, "sample every nth measured request of each replay with its phase timeline (0 = off)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: podbench [-scale f] [-workers n] [-cpuprofile f] [-memprofile f]\n")
		fmt.Fprintf(os.Stderr, "                [-bench-json f] [-bench-label s] [-metrics-out f] [-metrics-prom f]\n")
		fmt.Fprintf(os.Stderr, "                [-trace-sample n] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: table1 table2 fig1 fig2 fig3 fig8 fig9 fig10 fig11 overhead raw schemes ablations all\n")
		fmt.Fprintf(os.Stderr, "             capacity (background-dedup reclamation; on demand, not in \"all\")\n")
		fmt.Fprintf(os.Stderr, "             streams (per-stream index-cache apportionment sweep; on demand, not in \"all\")\n")
		fmt.Fprintf(os.Stderr, "             chunking (fixed4k vs gear vs seqcdc on the shifted trace; on demand, not in \"all\")\n")
		fmt.Fprintf(os.Stderr, "profiling flags measure the harness itself: -cpuprofile/-memprofile write pprof\n")
		fmt.Fprintf(os.Stderr, "profiles, -bench-json writes a perf trajectory tagged with -bench-label\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *traceSample < 0 {
		fmt.Fprintf(os.Stderr, "podbench: -trace-sample must be >= 0 (got %d)\n", *traceSample)
		os.Exit(2)
	}

	// flag parsing stops at the first positional argument, so a
	// misplaced or misspelled flag ("podbench table2 -bogus") would
	// otherwise ride along as an experiment name; reject everything
	// up front rather than failing after minutes of replay.
	// "capacity" (background dedup reclamation), "streams" (per-stream
	// index-cache apportionment), and "chunking" (the content-defined
	// chunking axis) are on-demand only: they are not part of "all" so
	// the default artifact set stays identical to the paper's engine
	// matrix.
	known := map[string]bool{"all": true, "capacity": true, "streams": true, "chunking": true}
	for _, n := range allExperiments {
		known[n] = true
	}
	for _, name := range flag.Args() {
		if strings.HasPrefix(name, "-") {
			fmt.Fprintf(os.Stderr, "podbench: flag %q must come before the experiment names\n", name)
			flag.Usage()
			os.Exit(2)
		}
		if !known[strings.ToLower(name)] {
			fmt.Fprintf(os.Stderr, "podbench: unknown experiment %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "podbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "podbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	wanted := flag.Args()
	if len(wanted) == 0 {
		wanted = []string{"all"}
	}
	env := experiments.NewEnv(*scale, *workers)
	defer env.Close()
	env.TraceEvery = *traceSample
	var track perf.Tracker

	run := func(name string) bool {
		start := time.Now()
		ok := true
		var chunkRows []experiments.ChunkingRow
		track.Measure(name, func() {
			switch name {
			case "table1":
				fmt.Println(experiments.Table1())
			case "table2":
				t, _ := env.Table2()
				fmt.Println(t)
			case "fig1":
				t, _ := env.Fig1()
				fmt.Println(t)
			case "fig2":
				t, _ := env.Fig2()
				fmt.Println(t)
			case "fig3":
				t, _ := env.Fig3(nil)
				fmt.Println(t)
			case "fig8":
				t, _ := env.Fig8()
				fmt.Println(t)
			case "fig9":
				t, _ := env.Fig9Write()
				fmt.Println(t)
				t, _ = env.Fig9Read()
				fmt.Println(t)
			case "fig10":
				t, _ := env.Fig10()
				fmt.Println(t)
			case "fig11":
				t, _ := env.Fig11()
				fmt.Println(t)
			case "overhead":
				t, _, _ := env.Overhead()
				fmt.Println(t)
			case "raw":
				fmt.Println(env.Raw())
			case "capacity":
				t, _ := env.Capacity()
				fmt.Println(t)
			case "streams":
				t, _ := env.Streams()
				fmt.Println(t)
				t, _ = env.StreamsScan()
				fmt.Println(t)
			case "chunking":
				t, rows := env.Chunking()
				fmt.Println(t)
				chunkRows = rows
			case "schemes":
				fmt.Println(env.SchemesTable())
			case "ablations":
				fmt.Println(env.ThresholdSweep("homes", nil))
				fmt.Println(env.StripeUnitSweep("web-vm", nil))
				fmt.Println(env.DupSweep(nil))
				fmt.Println(env.LayoutSweep("web-vm"))
				fmt.Println(env.ChurnSweep())
				h, d := env.DegradedPoint("homes")
				fmt.Printf("Degraded-mode ablation (homes, POD): healthy read %.2fms, one disk failed %.2fms\n\n", h/1000, d/1000)
			default:
				ok = false
			}
		})
		if !ok {
			return false
		}
		// chunking-throughput numbers join the trajectory entry so the
		// bench-delta gate watches the splitters' wall-clock rate
		for _, r := range chunkRows {
			track.Annotate("chunking_"+r.Algo+"_mbps", r.ThroughputMBs)
			track.Annotate("chunking_"+r.Algo+"_removed", float64(r.Removed))
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		return true
	}

	for _, name := range wanted {
		name = strings.ToLower(name)
		if name == "all" {
			for _, n := range allExperiments {
				run(n)
			}
			continue
		}
		run(name)
	}

	snap := env.MetricsSnapshot()
	if *metricsOut != "" {
		if err := writeSnapshot(*metricsOut, snap.WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "podbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsProm != "" {
		if err := writeSnapshot(*metricsProm, snap.WritePrometheus); err != nil {
			fmt.Fprintf(os.Stderr, "podbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *benchJSON != "" {
		// Per-phase latency summaries ride the trajectory as their own
		// entry, so BENCH_replay.json carries the simulated breakdown
		// next to the harness wall-clock numbers. The summary pass is
		// itself measured (wall/allocs of condensing the histograms),
		// so the row carries real harness cost instead of zeros that
		// trajectory diffs would read as a regression-proof entry.
		var pe *perf.Entry
		track.Measure("phases", func() { pe = phasesEntry(snap) })
		if pe == nil {
			track.Annotate("no_phase_samples", 1)
		} else {
			for k, v := range pe.Extra {
				track.Annotate(k, v)
			}
		}
		if err := track.WriteJSON(*benchJSON, *benchLabel, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "podbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "podbench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "podbench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}

// phasesEntry condenses the merged snapshot's per-phase latency
// histograms into one trajectory entry (mean/p50/p95/count per phase,
// in simulated microseconds); nil when no phase recorded a sample.
func phasesEntry(snap *metrics.Snapshot) *perf.Entry {
	extra := make(map[string]float64)
	for name, h := range snap.Histograms {
		if !strings.HasPrefix(name, "phase_") || h.N == 0 {
			continue
		}
		base := strings.TrimSuffix(name, "_us")
		extra[base+"_mean_us"] = h.Mean()
		extra[base+"_p50_us"] = h.Percentile(50)
		extra[base+"_p95_us"] = h.Percentile(95)
		extra[base+"_count"] = float64(h.N)
	}
	if len(extra) == 0 {
		return nil
	}
	return &perf.Entry{Name: "phases", Extra: extra}
}

// writeSnapshot writes one snapshot encoding ("-" = stdout) via the
// given writer method.
func writeSnapshot(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
