// Command podload drives the sharded volume-serving layer
// (internal/server) with an open-loop synthetic workload and reports
// serving throughput and latency percentiles.
//
// Usage:
//
//	podload [-trace mixed|web-vm|homes|mail] [-scale f] [-scheme s]
//	        [-shards n] [-clients n] [-rate r] [-requests n]
//	        [-write-ratio f] [-queue n] [-batch n] [-policy block|shed]
//	        [-route-chunks n] [-submit-batch n] [-cpuprofile f]
//	        [-chunking fixed4k|gear|seqcdc]
//	        [-streams] [-stream-profile adversarial|scan]
//	        [-bench-json f] [-bench-label s]
//	        [-metrics-out f] [-metrics-prom f] [-trace-sample n]
//
// The generator is open-loop: every request's virtual arrival time is
// fixed up front from the arrival rate (-rate, requests per simulated
// second; 0 floods every arrival at t=0), independent of completions —
// an overloaded configuration therefore shows its congestion as
// queueing delay in the latency percentiles rather than by slowing the
// injection. Client goroutines submit concurrently, each owning a
// disjoint subset of shards (client = shard mod clients): every shard
// receives its arrival stream in schedule order, so the per-shard FCFS
// queueing model measures real congestion, not wall-clock submission
// skew between clients. -clients is therefore capped at -shards.
// Submission is batched (-submit-batch, default 256): each client
// accumulates requests and hands them to server.SubmitBatch, which
// buckets them per shard and enqueues one entry per touched shard —
// the cross-shard scaling path. -submit-batch 1 reverts to one
// Submit per request. -cpuprofile profiles the serving harness.
//
// Reported latency is virtual-time sojourn (queue wait + service);
// reported throughput is completed requests per virtual second across
// the serving window, plus the wall-clock rate of the harness itself.
// With -bench-json the run joins the internal/perf trajectory, with
// throughput and percentiles attached to the entry's "extra" map.
//
// Observability: -metrics-out writes the merged metrics snapshot
// (per-phase latency histograms, shard-labeled queue-wait and service
// series, substrate gauges, and any sampled traces) as JSON;
// -metrics-prom writes the same snapshot as a Prometheus text dump;
// -trace-sample n records every nth request per shard with its full
// phase timeline. With -metrics-out the run additionally fails (exit 1)
// if the snapshot contains no histogram samples — the CI smoke
// assertion that the metrics pipeline is live.
//
// Multi-tenant streams: -streams enables per-stream fingerprint-index
// apportionment on every shard's engine (POD and Select-Dedupe schemes
// only) — the iCache index partition is divided into per-tenant quotas
// by the locality estimator, with a shared floor. It needs a
// stream-tagged workload: the mixed trace (tenants tagged 1-3) or an
// adversarial profile via -stream-profile (adversarial = two anti-phase
// burst tenants; scan = those plus a churning low-locality scan), which
// replaces -trace and pins the engine DRAM budget to the profile's
// tuning. The run prints a per-stream verdict block — writes, writes
// removed inline (pct recomputed from the counts merged across
// shards), and each tenant's summed index quota — and fails (exit 1)
// if no stream-tagged write reached any engine.
//
// Background dedup: -bgdedup attaches the idle-aware out-of-line
// deduplication scanner (internal/bgdedup) to every shard's engine
// (POD and Select-Dedupe schemes only). The scanner runs in virtual
// time through the same disk queues as foreground I/O, yielding
// whenever the array has backlog, and reclaims the duplicate copies
// the inline path intentionally wrote; the run prints a background
// verdict block with cleaner, allocator, and scanner counters.
// -bgdedup-rate budgets it in blocks per simulated second and
// -bgdedup-expect-reclaim turns "reclaimed > 0" into an exit-code
// assertion (the CI smoke check). -cleaner enables the background
// segment cleaner alongside.
//
// Chaos: -chaos <scenario> runs a named, seeded fault schedule
// (internal/chaos; sector, diskfail, storm, limp, full, bgdedup,
// globalfp, or shardcrash
// — bgdedup auto-arms -bgdedup and, after the oracle passes, crash-
// recovers every shard and re-verifies both the oracle and each
// shard's map/allocator consistency) against
// every shard's array while serving, switches the clients to the
// closed-loop Do path, and verifies a read-back integrity oracle after
// the drain: every block whose write the server ACKED must read back
// with exactly the acknowledged content. Requires -rate > 0 (faults are
// placed within the arrival horizon). -chaos-seed varies the schedule,
// -deadline-us arms per-request virtual deadlines. Any oracle violation
// fails the run.
//
// Shard outage: -chaos shardcrash (auto-arms -globalfp; needs at least
// 2 shards) crashes one shard mid-run as an isolated failure domain —
// requests routed to it fail-reply with transient shard-down errors,
// the tier fences its epoch and sweeps its advertisements, and the
// surviving shards keep serving — then rejoins it via journal replay
// and a cross-shard pin re-audit. -crash-shard picks the victim
// (default: the last shard), -crash-at-us/-recover-at-us place the
// outage window in virtual time (defaults: horizon/3 and 2/3 horizon).
// The run prints a shard-outage verdict (fencing epochs, stale and
// down-shard drops, recall timeouts, refused requests) and fails
// unless the crash fired, the shard rejoined, and the cluster-wide
// consistency audit passes.
//
// The process exits 0 on success, 1 if the run completes no requests,
// hits an error, or violates the chaos oracle, and 2 on bad flags.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	pod "github.com/pod-dedup/pod"
	"github.com/pod-dedup/pod/internal/bgdedup"
	"github.com/pod-dedup/pod/internal/cdc"
	"github.com/pod-dedup/pod/internal/chaos"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/experiments"
	"github.com/pod-dedup/pod/internal/fault"
	"github.com/pod-dedup/pod/internal/globalfp"
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/perf"
	"github.com/pod-dedup/pod/internal/server"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
	"github.com/pod-dedup/pod/internal/workload"
)

func main() {
	// Long-lived shard indexes dominate the heap; relax the GC target
	// so it does not re-trace that stable working set every few
	// milliseconds (see the same setting in podbench).
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(200)
	}
	traceName := flag.String("trace", "mixed", "workload: mixed, web-vm, homes, or mail")
	scale := flag.Float64("scale", 0.1, "trace scale (1.0 = paper request counts)")
	scheme := flag.String("scheme", experiments.POD, "storage scheme per shard (Native, Full-Dedupe, iDedup, Select-Dedupe, POD, ...)")
	shards := flag.Int("shards", 1, "independent engine shards")
	clients := flag.Int("clients", 0, "client goroutines (default: one per shard)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate, requests per simulated second (0 = flood)")
	requests := flag.Int("requests", 0, "cap on requests to serve (0 = whole trace)")
	writeRatio := flag.Float64("write-ratio", -1, "override the profile's write fraction, 0..1 (-1 = keep; named traces only)")
	queue := flag.Int("queue", 128, "per-shard queue depth")
	batch := flag.Int("batch", 32, "max requests a shard worker serves per drain")
	policyName := flag.String("policy", "block", "backpressure when a shard queue fills: block or shed")
	routeChunks := flag.Uint64("route-chunks", 0, "routing granule in 4 KiB chunks (0 = default)")
	submitBatch := flag.Int("submit-batch", 256, "client-side submission batch: requests bucketed per shard and enqueued in one send (1 = per-request Submit)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the serving harness to this file")
	benchJSON := flag.String("bench-json", "", "append this run to a perf trajectory JSON file")
	benchLabel := flag.String("bench-label", "podload", "label recorded in the -bench-json trajectory")
	metricsOut := flag.String("metrics-out", "", "write the merged metrics snapshot (with sampled traces) as JSON to this file")
	metricsProm := flag.String("metrics-prom", "", "write the merged metrics snapshot as Prometheus text to this file")
	traceSample := flag.Int("trace-sample", 0, "record every nth request per shard with its phase timeline (0 = off)")
	chaosName := flag.String("chaos", "", "fault scenario: sector, diskfail, storm, limp, full, bgdedup, globalfp, or shardcrash (\"\" = none)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for the fault schedule and transient coin")
	deadlineUS := flag.Int64("deadline-us", 0, "per-request virtual deadline in us (0 = none)")
	streamsOn := flag.Bool("streams", false, "enable per-stream index-cache apportionment on every shard (POD / Select-Dedupe; needs a stream-tagged workload)")
	streamProfile := flag.String("stream-profile", "", "adversarial multi-tenant workload: adversarial (anti-phase burst tenants) or scan (plus a churning scan); requires -streams, replaces -trace")
	bgDedup := flag.Bool("bgdedup", false, "attach the idle-aware background dedup scanner to every shard (POD / Select-Dedupe only)")
	bgRate := flag.Int64("bgdedup-rate", 0, "background scanner budget, 4 KiB blocks per simulated second (0 = default)")
	bgExpect := flag.Bool("bgdedup-expect-reclaim", false, "fail the run unless the background scanner reclaimed at least one block")
	cleanerOn := flag.Bool("cleaner", false, "enable the background segment cleaner on every shard")
	gfp := flag.Bool("globalfp", false, "enable the global fingerprint tier: async cross-shard dedup recovery (implies -bgdedup; needs 2-64 shards)")
	gfpQueue := flag.Int("globalfp-queue", 0, "per-partition advertisement queue capacity (0 = default)")
	gfpRate := flag.Int("globalfp-rate", 0, "remap folds the tier applies per shard per engine tick (0 = default)")
	gfpExpect := flag.Bool("globalfp-expect-remaps", false, "fail the run unless the tier applied at least one cross-shard remap")
	chunking := flag.String("chunking", "fixed4k", "per-shard chunker: fixed4k, gear, or seqcdc (CDC needs a dedup scheme; incompatible with -chaos)")
	crashShard := flag.Int("crash-shard", -1, "shard to crash mid-run (-1 = last shard; requires -chaos shardcrash)")
	crashAtUS := flag.Int64("crash-at-us", 0, "virtual crash time in us (0 = horizon/3; requires -chaos shardcrash)")
	recoverAtUS := flag.Int64("recover-at-us", 0, "virtual rejoin time in us (0 = 2/3 horizon; requires -chaos shardcrash)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: podload [-trace mixed|web-vm|homes|mail] [-scale f] [-scheme s] [-shards n]\n")
		fmt.Fprintf(os.Stderr, "               [-clients n] [-rate r] [-requests n] [-write-ratio f] [-queue n]\n")
		fmt.Fprintf(os.Stderr, "               [-batch n] [-policy block|shed] [-route-chunks n] [-submit-batch n]\n")
		fmt.Fprintf(os.Stderr, "               [-cpuprofile f] [-bench-json f] [-bench-label s]\n")
		fmt.Fprintf(os.Stderr, "               [-metrics-out f] [-metrics-prom f] [-trace-sample n]\n")
		fmt.Fprintf(os.Stderr, "               [-chunking fixed4k|gear|seqcdc] [-streams] [-stream-profile adversarial|scan]\n")
		fmt.Fprintf(os.Stderr, "               [-chaos scenario] [-chaos-seed n] [-deadline-us n]\n")
		fmt.Fprintf(os.Stderr, "               [-bgdedup] [-bgdedup-rate n] [-bgdedup-expect-reclaim] [-cleaner]\n")
		fmt.Fprintf(os.Stderr, "               [-globalfp] [-globalfp-queue n] [-globalfp-rate n] [-globalfp-expect-remaps]\n")
		fmt.Fprintf(os.Stderr, "               [-crash-shard n] [-crash-at-us n] [-recover-at-us n]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "podload: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	policy, err := server.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "podload: %v\n", err)
		os.Exit(2)
	}
	schemeName, err := pod.ParseScheme(*scheme)
	if err != nil {
		fmt.Fprintf(os.Stderr, "podload: %v\n", err)
		os.Exit(2)
	}
	// Chunker validation fails fast: an unknown name must exit non-zero
	// before any trace generation or shard construction.
	chunkAlgo, err := cdc.ParseAlgo(*chunking)
	if err != nil {
		fmt.Fprintf(os.Stderr, "podload: %v\n", err)
		os.Exit(2)
	}
	if chunkAlgo != cdc.Fixed4K && schemeName == pod.SchemeNative {
		fmt.Fprintf(os.Stderr, "podload: -chunking %s needs a deduplicating scheme; Native never consults chunk content\n", chunkAlgo)
		os.Exit(2)
	}
	if *traceSample < 0 {
		fmt.Fprintf(os.Stderr, "podload: -trace-sample must be >= 0 (got %d)\n", *traceSample)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "podload: -shards must be at least 1")
		os.Exit(2)
	}
	if procs := runtime.GOMAXPROCS(0); *shards > procs {
		// still correct — simulated queueing runs in virtual time, so the
		// queued-vs-served accounting is unaffected — but the extra shard
		// workers time-share CPUs, so wall-clock throughput stops scaling
		fmt.Fprintf(os.Stderr, "podload: warning: %d shards exceed GOMAXPROCS=%d; wall-clock throughput will not scale past %d workers (virtual-time queueing and latency numbers remain exact)\n",
			*shards, procs, procs)
	}
	if *clients == 0 || *clients > *shards {
		*clients = *shards
	}
	if *submitBatch < 1 {
		fmt.Fprintln(os.Stderr, "podload: -submit-batch must be at least 1")
		os.Exit(2)
	}
	if *deadlineUS < 0 {
		fmt.Fprintln(os.Stderr, "podload: -deadline-us must be >= 0")
		os.Exit(2)
	}
	if *chaosName != "" {
		// validate the scenario name up front (dims are per shard later)
		if _, err := chaos.Build(*chaosName, 4, 1024, 1000, 1); err != nil {
			fmt.Fprintf(os.Stderr, "podload: %v\n", err)
			os.Exit(2)
		}
		if chunkAlgo != cdc.Fixed4K {
			// the read-back oracle compares each LBA against the exact
			// ContentID the trace wrote there; CDC remaps slot contents
			// to derived chunk IDs, so the oracle cannot apply
			fmt.Fprintln(os.Stderr, "podload: -chunking is incompatible with -chaos (the read-back oracle checks trace ContentIDs per LBA)")
			os.Exit(2)
		}
		if *rate <= 0 {
			fmt.Fprintln(os.Stderr, "podload: -chaos requires -rate > 0 (faults are placed within the arrival horizon)")
			os.Exit(2)
		}
		if *chaosName == "bgdedup" {
			// the scenario exists to exercise the scanner under faults
			*bgDedup = true
		}
		if *chaosName == "globalfp" {
			// the scenario exists to race cross-shard remaps with faults
			*gfp = true
		}
		if *chaosName == "shardcrash" {
			// the scenario crashes one shard mid-run with the tier live;
			// the surviving shards are the point, so one shard is useless
			if *shards < 2 {
				fmt.Fprintln(os.Stderr, "podload: -chaos shardcrash requires at least 2 shards (the surviving shards must keep serving)")
				os.Exit(2)
			}
			*gfp = true
		}
	}
	// Crash-flag validation fails fast: a bad shard index or an inverted
	// crash/recover window would otherwise surface mid-replay as a
	// confusing CrashShard error (or a crash that never fires).
	if (*crashShard != -1 || *crashAtUS != 0 || *recoverAtUS != 0) && *chaosName != "shardcrash" {
		fmt.Fprintln(os.Stderr, "podload: -crash-shard/-crash-at-us/-recover-at-us require -chaos shardcrash")
		os.Exit(2)
	}
	if *chaosName == "shardcrash" {
		if *crashShard != -1 && (*crashShard < 0 || *crashShard >= *shards) {
			fmt.Fprintf(os.Stderr, "podload: -crash-shard %d out of range [0, %d)\n", *crashShard, *shards)
			os.Exit(2)
		}
		if *crashAtUS < 0 || *recoverAtUS < 0 {
			fmt.Fprintln(os.Stderr, "podload: -crash-at-us and -recover-at-us must be >= 0")
			os.Exit(2)
		}
		if *crashAtUS != 0 && *recoverAtUS != 0 && *recoverAtUS <= *crashAtUS {
			fmt.Fprintf(os.Stderr, "podload: -recover-at-us %d must be after -crash-at-us %d\n", *recoverAtUS, *crashAtUS)
			os.Exit(2)
		}
	}
	if *gfpQueue < 0 {
		fmt.Fprintln(os.Stderr, "podload: -globalfp-queue must be >= 0")
		os.Exit(2)
	}
	if *gfpRate < 0 {
		fmt.Fprintln(os.Stderr, "podload: -globalfp-rate must be >= 0")
		os.Exit(2)
	}
	if (*gfpQueue > 0 || *gfpRate > 0 || *gfpExpect) && !*gfp {
		fmt.Fprintln(os.Stderr, "podload: -globalfp-queue/-globalfp-rate/-globalfp-expect-remaps require -globalfp")
		os.Exit(2)
	}
	if *gfp {
		if *shards < 2 {
			fmt.Fprintln(os.Stderr, "podload: -globalfp requires at least 2 shards (the tier recovers cross-shard dedup losses; one shard has none)")
			os.Exit(2)
		}
		if *shards > 64 {
			fmt.Fprintln(os.Stderr, "podload: -globalfp supports at most 64 shards")
			os.Exit(2)
		}
		// the tier's shard agents wrap the out-of-line scanner
		*bgDedup = true
	}
	if *bgExpect && !*bgDedup {
		fmt.Fprintln(os.Stderr, "podload: -bgdedup-expect-reclaim requires -bgdedup")
		os.Exit(2)
	}
	if *bgDedup && schemeName != pod.SchemePOD && schemeName != pod.SchemeSelectDedupe {
		fmt.Fprintf(os.Stderr, "podload: -bgdedup supports schemes %s and %s only (got %s)\n",
			pod.SchemePOD, pod.SchemeSelectDedupe, schemeName)
		os.Exit(2)
	}
	// Stream-mode validation fails fast, before any trace is generated:
	// a bad combination would otherwise only surface as an all-zero
	// verdict block minutes into a replay.
	switch *streamProfile {
	case "", "adversarial", "scan":
	default:
		fmt.Fprintf(os.Stderr, "podload: unknown -stream-profile %q (want adversarial or scan)\n", *streamProfile)
		os.Exit(2)
	}
	if *streamProfile != "" && !*streamsOn {
		fmt.Fprintln(os.Stderr, "podload: -stream-profile requires -streams")
		os.Exit(2)
	}
	if *streamsOn {
		if schemeName != pod.SchemePOD && schemeName != pod.SchemeSelectDedupe {
			fmt.Fprintf(os.Stderr, "podload: -streams supports schemes %s and %s only (got %s)\n",
				pod.SchemePOD, pod.SchemeSelectDedupe, schemeName)
			os.Exit(2)
		}
		if *streamProfile == "" && *traceName != "mixed" {
			fmt.Fprintf(os.Stderr, "podload: -streams needs a stream-tagged workload; trace %q is untagged (use -trace mixed or -stream-profile)\n", *traceName)
			os.Exit(2)
		}
		if *streamProfile != "" && *writeRatio >= 0 {
			fmt.Fprintln(os.Stderr, "podload: -write-ratio applies to named traces, not -stream-profile")
			os.Exit(2)
		}
	}

	// --- workload ---
	var (
		tr   *trace.Trace
		prof workload.Profile
	)
	switch {
	case *streamProfile != "":
		var dims workload.MixedDims
		if *streamProfile == "adversarial" {
			tr, _, dims = workload.AdversarialMix(*scale)
		} else {
			tr, _, dims = workload.AdversarialScanMix(*scale)
		}
		prof = workload.Profile{Name: tr.Name, FootprintChunks: dims.FootprintChunks, MemoryBytes: dims.MemoryBytes}
	case *traceName == "mixed":
		if *writeRatio >= 0 {
			fmt.Fprintln(os.Stderr, "podload: -write-ratio applies to named traces, not mixed")
			os.Exit(2)
		}
		var dims workload.MixedDims
		tr, _, dims = workload.MixedTrace(*scale)
		prof = workload.Profile{Name: "mixed", FootprintChunks: dims.FootprintChunks, MemoryBytes: dims.MemoryBytes}
	default:
		p, ok := workload.ByName(*traceName)
		if !ok {
			fmt.Fprintf(os.Stderr, "podload: unknown trace %q (want mixed, web-vm, homes, or mail)\n", *traceName)
			os.Exit(2)
		}
		if *writeRatio >= 0 {
			if *writeRatio > 1 {
				fmt.Fprintln(os.Stderr, "podload: -write-ratio must be in [0,1]")
				os.Exit(2)
			}
			p.WriteRatio = *writeRatio
			p.PhaseLen = 0 // flat mix: the burst phases would override the ratio
		}
		tr, _ = workload.Generate(p, *scale)
		prof = p
	}
	if *requests > 0 && *requests < len(tr.Requests) {
		tr.Requests = tr.Requests[:*requests]
	}
	n := len(tr.Requests)
	if n == 0 {
		fmt.Fprintln(os.Stderr, "podload: empty trace")
		os.Exit(1)
	}

	// open-loop arrival schedule: fixed before the run, rate in
	// requests per *simulated* second
	arrivals := make([]sim.Time, n)
	if *rate > 0 {
		for i := range arrivals {
			arrivals[i] = sim.Time(float64(i) * 1e6 / *rate)
		}
	}
	var horizon sim.Time // arrival-schedule span, used to place faults
	if *rate > 0 {
		horizon = sim.Time(float64(n) * 1e6 / *rate)
	}
	// Shard-outage window defaults resolve against the horizon: crash a
	// third in, rejoin at two thirds, so the run exercises all three
	// regimes (healthy, degraded, recovered) in one trace.
	var crashAt, recoverAt sim.Time
	if *chaosName == "shardcrash" {
		if *crashShard == -1 {
			*crashShard = *shards - 1
		}
		crashAt = sim.Time(*crashAtUS)
		if crashAt == 0 {
			crashAt = horizon / 3
		}
		recoverAt = sim.Time(*recoverAtUS)
		if recoverAt == 0 {
			recoverAt = horizon * 2 / 3
		}
		if recoverAt <= crashAt {
			fmt.Fprintf(os.Stderr, "podload: shard rejoin at %v is not after the crash at %v (defaults resolve against the %v horizon)\n",
				recoverAt, crashAt, horizon)
			os.Exit(2)
		}
	}

	// --- server over per-shard engines ---
	var oracle *chaos.Oracle
	srv, err := server.New(server.Config{
		Shards:      *shards,
		GranChunks:  *routeChunks,
		QueueDepth:  *queue,
		MaxBatch:    *batch,
		Policy:      policy,
		Timing:      server.Queued,
		TraceSample: *traceSample,
		DeadlineUS:  *deadlineUS,
		RetrySeed:   *chaosSeed,
		GlobalFP:    *gfp,
		GlobalFPParams: globalfp.Params{
			QueueLen:     *gfpQueue,
			FoldsPerTick: *gfpRate,
		},
		NewEngine: func(shard int) engine.Engine {
			cfg := experiments.BuildConfig(prof, *scale)
			cfg.Cleaner = engine.CleanerParams{Enabled: *cleanerOn}
			cfg.Chunking = cdc.Params{Algo: chunkAlgo}
			if *streamsOn {
				cfg.Streams = engine.StreamParams{Enabled: true}
			}
			if *streamProfile != "" {
				// the adversarial pools are tuned against the profile's
				// DRAM budget; scaling it with the trace would break the
				// pool / index-partition ratios the mix is built around
				cfg.MemoryBytes = prof.MemoryBytes
			}
			if *chaosName != "" {
				// same fault plan against every shard's array; the
				// transient coin varies per shard via the seed
				sched, berr := chaos.Build(*chaosName, cfg.Array.NumDisks(), cfg.Array.PerDiskBlocks(),
					horizon, *chaosSeed^uint64(shard)*0x9E3779B97F4A7C15)
				if berr != nil {
					return nil // name was validated above; dims must be degenerate
				}
				cfg.Array.SetInjector(fault.NewInjector(sched, cfg.Array.NumDisks()))
			}
			e := experiments.NewEngine(string(schemeName), cfg)
			if *bgDedup {
				// scheme validated above, so Attach cannot fail
				bgdedup.Attach(e, bgdedup.Params{BlocksPerSec: *bgRate})
			}
			return e
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "podload: %v\n", err)
		os.Exit(1)
	}
	if *chaosName != "" {
		oracle = chaos.NewOracle(srv.Shard)
	}

	fmt.Printf("podload: trace=%s scheme=%s shards=%d clients=%d rate=%s requests=%d queue=%d batch=%d policy=%s\n",
		tr.Name, schemeName, *shards, *clients, rateString(*rate), n, *queue, *batch, policy)
	if *streamsOn {
		fmt.Printf("streams: per-stream index-cache apportionment on (dynamic, locality-driven)\n")
	}
	if *chaosName != "" {
		fmt.Printf("chaos: scenario=%s seed=%d horizon=%v deadline=%s\n",
			*chaosName, *chaosSeed, horizon, usString(*deadlineUS))
	}
	if *chaosName == "shardcrash" {
		fmt.Printf("shardcrash: shard=%d crash@%v recover@%v\n", *crashShard, crashAt, recoverAt)
	}

	// --- drive ---
	if *cpuprofile != "" {
		f, perr := os.Create(*cpuprofile)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "podload: %v\n", perr)
			os.Exit(1)
		}
		if perr := pprof.StartCPUProfile(f); perr != nil {
			fmt.Fprintf(os.Stderr, "podload: %v\n", perr)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	var track perf.Tracker
	var submitErrs, readFails int64
	var errMu sync.Mutex
	var closeErr error
	// Shard-outage triggers, fired exactly once each (the CAS) by the
	// client that owns the victim shard when that shard's next arrival
	// crosses the threshold. fireRecover pulls the crash in first as a
	// belt-and-braces ordering guard (a stream that skips the whole
	// crash window still produces a well-ordered outage).
	var (
		crashFired, recoverFired atomic.Bool
		recoveredRecords         atomic.Int64
		outageErr                error
	)
	fireCrash := func() {
		if crashFired.CompareAndSwap(false, true) {
			if cerr := srv.CrashShard(*crashShard); cerr != nil {
				errMu.Lock()
				outageErr = cerr
				errMu.Unlock()
			}
		}
	}
	fireRecover := func() {
		fireCrash()
		if recoverFired.CompareAndSwap(false, true) {
			nrec, rerr := srv.RecoverShard(*crashShard)
			if rerr != nil {
				errMu.Lock()
				outageErr = rerr
				errMu.Unlock()
				return
			}
			recoveredRecords.Store(int64(nrec))
		}
	}
	// Pre-partition the trace per client in one routing pass. Each
	// client used to rescan (and re-route) the whole trace to find its
	// requests — an O(clients × n) cost that dominated the submission
	// path at high shard counts. One pass in trace order keeps every
	// shard's arrival stream in schedule order within its owning client.
	parts := make([][]int32, *clients)
	for i := 0; i < n; i++ {
		c := srv.Shard(tr.Requests[i].LBA) % *clients
		parts[c] = append(parts[c], int32(i))
	}
	start := time.Now()
	track.Measure(*benchLabel, func() {
		var wg sync.WaitGroup
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				// Open-loop batch submission: requests accumulate into a
				// fixed-capacity batch that SubmitBatch buckets per shard
				// and enqueues with one send per touched shard. The batch
				// never reallocates (flushed exactly at capacity), so the
				// pointers the server retains stay valid; ownership
				// transfers on submit and a fresh batch is allocated.
				var batch []server.Request
				flush := func() bool {
					if len(batch) == 0 {
						return true
					}
					err := srv.SubmitBatch(batch)
					batch = nil
					if err != nil {
						errMu.Lock()
						submitErrs++
						errMu.Unlock()
						return false
					}
					return true
				}
				for _, i := range parts[c] {
					r := &tr.Requests[i]
					// Outage triggers key on the victim shard's own stream:
					// that stream is submitted in order by one client, so
					// the window covers a deterministic slice of the
					// shard's requests (pre-crash served and journaled,
					// in-window refused, post-rejoin served) regardless of
					// how far the other clients race ahead in wall time.
					if *chaosName == "shardcrash" && srv.Shard(r.LBA) == *crashShard {
						switch t := arrivals[i]; {
						case t >= recoverAt:
							fireRecover()
						case t >= crashAt:
							fireCrash()
						}
					}
					req := server.Request{Time: int64(arrivals[i]), Op: r.Op, LBA: r.LBA, Stream: r.Stream}
					if r.Op == trace.Read {
						req.Chunks = r.N
					} else {
						req.Content = r.Content
					}
					var err error
					if oracle == nil && *submitBatch > 1 {
						if batch == nil {
							batch = make([]server.Request, 0, *submitBatch)
						}
						batch = append(batch, req)
						if len(batch) == cap(batch) && !flush() {
							return
						}
						continue
					}
					if oracle == nil {
						err = srv.Submit(&req)
					} else {
						// closed-loop: the oracle needs each outcome
						var res server.Result
						res, err = srv.Do(&req)
						if err == nil {
							switch {
							case r.Op == trace.Write && res.Err == nil:
								oracle.RecordWrite(&req, res.Shard)
							case r.Op == trace.Write:
								// the engine was touched iff any attempt
								// ran (breaker/deadline refusals consume
								// no service time)
								oracle.RecordFailedWrite(&req, res.Shard,
									res.Retries > 0 || res.Service > 0)
							case res.Err != nil:
								atomic.AddInt64(&readFails, 1)
							}
						}
					}
					if err == server.ErrShed {
						continue // counted by the server
					}
					if err != nil {
						errMu.Lock()
						submitErrs++
						errMu.Unlock()
						return
					}
				}
				flush()
			}(c)
		}
		wg.Wait()
		if *chaosName == "shardcrash" && crashFired.Load() {
			// backstop: a trace whose arrivals never cross the rejoin
			// threshold (or a racing trigger that recovered a not-yet-
			// down shard) must still rejoin before Close, so settlement
			// and the cluster-wide audit see a whole cluster
			if len(srv.DownShards()) > 0 {
				recoverFired.Store(true)
				nrec, rerr := srv.RecoverShard(*crashShard)
				if rerr != nil {
					errMu.Lock()
					outageErr = rerr
					errMu.Unlock()
				} else {
					recoveredRecords.Store(int64(nrec))
				}
			}
		}
		closeErr = srv.Close()
	})
	wall := time.Since(start)

	// --- report ---
	snap := srv.Stats()
	if closeErr != nil {
		fmt.Fprintf(os.Stderr, "podload: %v\n", closeErr)
		os.Exit(1)
	}
	if outageErr != nil {
		fmt.Fprintf(os.Stderr, "podload: shard outage: %v\n", outageErr)
		os.Exit(1)
	}
	if submitErrs > 0 {
		fmt.Fprintf(os.Stderr, "podload: %d clients aborted on submission errors\n", submitErrs)
		os.Exit(1)
	}
	if snap.Completed == 0 {
		fmt.Fprintln(os.Stderr, "podload: zero completed requests")
		os.Exit(1)
	}

	wallRPS := float64(snap.Completed) / wall.Seconds()
	simTput := snap.Throughput()
	p50 := snap.Latency.Percentile(50)
	p95 := snap.Latency.Percentile(95)
	p99 := snap.Latency.Percentile(99)

	fmt.Printf("completed %d of %d requests (%d shed) in %v wall (%.0f req/s wall)\n",
		snap.Completed, n, snap.ShedCount, wall.Round(time.Millisecond), wallRPS)
	fmt.Printf("simulated: window %v, aggregate throughput %.1f req/s\n",
		snap.LastComplete.Sub(snap.FirstArrival), simTput)
	fmt.Printf("latency (sojourn): p50 %.2fms p95 %.2fms p99 %.2fms mean %.2fms max %.2fms\n",
		p50/1000, p95/1000, p99/1000, snap.Latency.Mean()/1000, float64(snap.Latency.Max())/1000)
	fmt.Printf("dedup: %.1f%% writes removed, %.1f%% chunks deduped, %.1f%% read cache hits, %d blocks used\n",
		snap.Engine.WriteRemovalPct(), snap.Engine.DedupRatioPct(), snap.Engine.CacheHitPct(), snap.UsedBlocks)
	lo, hi := snap.PerShard[0].Completed, snap.PerShard[0].Completed
	for _, ps := range snap.PerShard {
		if ps.Completed < lo {
			lo = ps.Completed
		}
		if ps.Completed > hi {
			hi = ps.Completed
		}
	}
	fmt.Printf("shards: %d, completed/shard min %d max %d\n", snap.Shards, lo, hi)

	// --- per-stream verdict ---
	// Raw per-stream counters sum correctly across the merged shard
	// snapshots; the removal percentage is recomputed from the merged
	// counts (the per-shard pct gauge does not survive summation).
	// Quotas likewise sum: the line reports the tenant's total index
	// entries across every shard's partition.
	if *streamsOn {
		g := snap.Metrics.Gauges
		tagged := int64(0)
		for s := 0; s < int(trace.MaxStreams); s++ {
			l := strconv.Itoa(s)
			writes, okW := g[metrics.Labeled("stream_writes", "stream", l)]
			quota, okQ := g[metrics.Labeled("icache_stream_quota", "stream", l)]
			if !okW && !okQ {
				continue
			}
			removed := g[metrics.Labeled("stream_writes_removed", "stream", l)]
			pct := 0.0
			if writes > 0 {
				pct = 100 * float64(removed) / float64(writes)
			}
			fmt.Printf("stream %d: writes=%d removed=%d (%.1f%%) index-quota=%d entries\n",
				s, writes, removed, pct, quota)
			tagged += writes
		}
		if tagged == 0 {
			fmt.Fprintln(os.Stderr, "podload: -streams: no stream-tagged writes reached any engine")
			os.Exit(1)
		}
	}

	// --- background-work verdict ---
	// Unlabeled substrate gauges sum across shards in the merged snapshot.
	if *cleanerOn || *bgDedup {
		g := snap.Metrics.Gauges
		fmt.Printf("cleaner: passes=%d moved=%d reclaimed=%d\n",
			g["cleaner_passes"], g["cleaner_blocks_moved"], g["cleaner_reclaimed_blocks"])
		fmt.Printf("alloc: used=%d blocks, free extents=%d, largest free=%d\n",
			g["alloc_used_blocks"], g["alloc_free_extents"], g["alloc_largest_free"])
		if *bgDedup {
			fmt.Printf("bgdedup: steps=%d wraps=%d scan-ios=%d scanned=%d dups=%d remapped=%d reclaimed=%d seq-swaps=%d\n",
				g["bgdedup_steps"], g["bgdedup_wraps"], g["bgdedup_scan_ios"],
				g["bgdedup_scanned_blocks"], g["bgdedup_duplicate_blocks"],
				g["bgdedup_remapped_lbas"], g["bgdedup_reclaimed_blocks"], g["bgdedup_seq_swaps"])
			fmt.Printf("bgdedup: paused busy=%d load=%d, skipped extents=%d\n",
				g["bgdedup_paused_busy"], g["bgdedup_paused_load"], g["bgdedup_skipped_extents"])
			if *bgExpect && g["bgdedup_reclaimed_blocks"] == 0 {
				fmt.Fprintln(os.Stderr, "podload: -bgdedup-expect-reclaim: scanner reclaimed zero blocks")
				os.Exit(1)
			}
		}
	}
	if *gfp {
		g := snap.Metrics.Gauges
		fmt.Printf("globalfp: ads queued=%d dropped=%d | dups detected=%d hints broadcast=%d installed=%d | table entries=%d fixes=%d\n",
			g["globalfp_ads_queued"], g["globalfp_ads_dropped"],
			g["globalfp_dups_detected"], g["globalfp_hints_broadcast"], g["globalfp_hints_installed"],
			g["globalfp_table_entries"], g["globalfp_table_fixes"])
		fmt.Printf("globalfp: remaps applied=%d rejected=%d reclaimed=%d blocks | pins granted=%d rejects=%d | recalls %d sent %d done\n",
			g["globalfp_remaps_applied"], g["globalfp_remaps_rejected"], g["globalfp_reclaimed_blocks"],
			g["globalfp_pins_granted"], g["globalfp_pin_rejects"],
			g["globalfp_recalls_sent"], g["globalfp_recalls_done"])
		fmt.Printf("globalfp: remote inline dedupes=%d remote reads=%d\n",
			snap.Engine.RemoteDeduped, snap.Engine.RemoteReads)
		if *gfpExpect && g["globalfp_remaps_applied"] == 0 && snap.Engine.RemoteDeduped == 0 {
			fmt.Fprintln(os.Stderr, "podload: -globalfp-expect-remaps: tier neither folded a duplicate nor enabled a remote inline dedupe")
			os.Exit(1)
		}
		// The cross-shard audit: every remote reference targets a live,
		// correctly pinned canonical. Runs post-Close, so settlement has
		// quiesced the protocol.
		if cerr := srv.CheckConsistency(); cerr != nil {
			fmt.Fprintf(os.Stderr, "podload: globalfp consistency: %v\n", cerr)
			os.Exit(1)
		}
		fmt.Println("globalfp: cross-shard consistency PASS")
	}

	// --- shard-outage verdict ---
	// Epochs are shard-labeled (one fencing generation per shard); the
	// stale/down drop counters and recall timeouts are unlabeled and sum
	// across shards in the merged snapshot.
	if *chaosName == "shardcrash" {
		g := snap.Metrics.Gauges
		epochs := make([]string, snap.Shards)
		var refused int64
		for k := 0; k < snap.Shards; k++ {
			l := strconv.Itoa(k)
			epochs[k] = strconv.FormatInt(g[metrics.Labeled("globalfp_epoch", "shard", l)], 10)
			refused += g[metrics.Labeled("server_shard_down_refused", "shard", l)]
		}
		fmt.Printf("shardcrash: shard %d crashed and rejoined, %d journal records replayed, %d requests refused while down\n",
			*crashShard, recoveredRecords.Load(), refused)
		fmt.Printf("shardcrash: epochs=[%s] stale-dropped=%d down-dropped=%d recall-timeouts=%d\n",
			strings.Join(epochs, " "), g["globalfp_stale_dropped"], g["globalfp_down_dropped"], g["globalfp_recall_timeouts"])
		if !crashFired.Load() {
			fmt.Fprintln(os.Stderr, "podload: shardcrash: the crash threshold was never reached (trace too short for the window?)")
			os.Exit(1)
		}
		if down := srv.DownShards(); len(down) > 0 {
			fmt.Fprintf(os.Stderr, "podload: shardcrash: shards %v still down after the run\n", down)
			os.Exit(1)
		}
		fmt.Println("shardcrash: outage window closed, cluster whole")
	}

	// --- chaos verdict ---
	if oracle != nil {
		g := snap.Metrics.Gauges
		sumShard := func(name string) int64 {
			var t int64
			for k := 0; k < snap.Shards; k++ {
				t += g[metrics.Labeled(name, "shard", strconv.Itoa(k))]
			}
			return t
		}
		fmt.Printf("chaos faults: injected transient=%d sector=%d diskfail=%d slow=%d | healed ranges=%d\n",
			g["fault_injected_transient"], g["fault_injected_sector"],
			g["fault_injected_disk_fail"], g["fault_slow_accesses"], g["fault_healed_ranges"])
		fmt.Printf("chaos raid: degraded reads=%d sector repairs=%d fail events=%d rebuild ios=%d rebuilds done=%d data loss=%d\n",
			g["raid_degraded_reads"], g["raid_sector_repairs"], g["raid_fail_events"],
			g["raid_rebuild_ios"], g["raid_rebuilds_done"], g["raid_data_loss_errors"])
		fmt.Printf("chaos server: retries=%d failed=%d deadline=%d breaker opens=%d breaker shed=%d read failures=%d\n",
			sumShard("server_retries"), sumShard("server_failed"), sumShard("server_deadline_exceeded"),
			sumShard("server_breaker_opens"), sumShard("server_breaker_shed"), atomic.LoadInt64(&readFails))
		acked, failedW, indet, spilled := oracle.Stats()
		viol, checked := oracle.Check(srv.ReadContent)
		fmt.Printf("chaos oracle: %d acked writes, %d failed writes, %d indeterminate blocks, %d spilled chunks, %d blocks verified\n",
			acked, failedW, indet, spilled, checked)
		if len(viol) > 0 {
			for i, v := range viol {
				if i >= 10 {
					fmt.Fprintf(os.Stderr, "  ... and %d more\n", len(viol)-10)
					break
				}
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			fmt.Fprintf(os.Stderr, "podload: chaos oracle: %d integrity violations\n", len(viol))
			os.Exit(1)
		}
		fmt.Println("chaos oracle: PASS")

		// With the scanner armed, additionally prove the interrupted
		// pass is crash-consistent: power-fail the node, rebuild every
		// shard from its NVRAM journal, re-run the oracle against the
		// recovered state, and sweep each shard's map/allocator/store for
		// leaked or double-used extents.
		if *bgDedup {
			rec, rerr := srv.CrashAndRecover()
			if rerr != nil {
				fmt.Fprintf(os.Stderr, "podload: crash recovery: %v\n", rerr)
				os.Exit(1)
			}
			viol2, checked2 := oracle.Check(srv.ReadContent)
			if len(viol2) > 0 {
				for i, v := range viol2 {
					if i >= 10 {
						fmt.Fprintf(os.Stderr, "  ... and %d more\n", len(viol2)-10)
						break
					}
					fmt.Fprintf(os.Stderr, "  %s\n", v)
				}
				fmt.Fprintf(os.Stderr, "podload: chaos oracle after recovery: %d integrity violations\n", len(viol2))
				os.Exit(1)
			}
			for k := 0; k < snap.Shards; k++ {
				var cerr error
				srv.WithEngine(k, func(e engine.Engine) {
					if be, ok := e.(interface{ Base() *engine.Base }); ok {
						cerr = be.Base().CheckConsistency()
					}
				})
				if cerr != nil {
					fmt.Fprintf(os.Stderr, "podload: shard %d inconsistent after recovery: %v\n", k, cerr)
					os.Exit(1)
				}
			}
			if *gfp {
				// re-audit cross-shard references against the recovered
				// pin state (ref pins only; hinted pins are volatile)
				if cerr := srv.CheckConsistency(); cerr != nil {
					fmt.Fprintf(os.Stderr, "podload: globalfp consistency after recovery: %v\n", cerr)
					os.Exit(1)
				}
			}
			fmt.Printf("chaos recovery: %d journal records replayed, %d blocks re-verified, consistency PASS\n",
				rec, checked2)
		}
	}

	// --- metrics ---
	m := snap.Metrics
	m.Traces = srv.Traces()
	// Per-shard queue wait vs. service time, from the shard-labeled
	// histograms the server publishes into each shard engine's registry.
	for k := 0; k < snap.Shards; k++ {
		label := strconv.Itoa(k)
		qw := m.Histograms[metrics.Labeled("server_queue_wait_us", "shard", label)]
		svc := m.Histograms[metrics.Labeled("server_service_us", "shard", label)]
		if qw == nil || svc == nil {
			continue
		}
		fmt.Printf("shard %d: queue-wait p50 %.2fms p95 %.2fms | service p50 %.2fms p95 %.2fms (%d served)\n",
			k, qw.Percentile(50)/1000, qw.Percentile(95)/1000,
			svc.Percentile(50)/1000, svc.Percentile(95)/1000, svc.N)
	}
	if len(m.Traces) > 0 {
		t := m.Traces[0]
		fmt.Printf("traces: %d sampled (every %d per shard); first: shard=%d op=%v lba=%d chunks=%d sojourn=%dus phases=%v\n",
			len(m.Traces), *traceSample, t.Shard, t.Op, t.LBA, t.Chunks, t.Sojourn, t.Phases)
	}
	if *metricsOut != "" {
		if err := writeSnapshot(*metricsOut, m.WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "podload: %v\n", err)
			os.Exit(1)
		}
		// Smoke assertion: an instrumented run must have recorded
		// latency samples somewhere, or the pipeline is dead.
		samples := int64(0)
		for _, h := range m.Histograms {
			samples += h.N
		}
		if samples == 0 {
			fmt.Fprintln(os.Stderr, "podload: metrics snapshot has no histogram samples")
			os.Exit(1)
		}
		fmt.Printf("metrics: %d series (%d histogram samples) -> %s\n", len(m.Histograms)+len(m.Gauges)+len(m.Counters), samples, *metricsOut)
	}
	if *metricsProm != "" {
		if err := writeSnapshot(*metricsProm, m.WritePrometheus); err != nil {
			fmt.Fprintf(os.Stderr, "podload: %v\n", err)
			os.Exit(1)
		}
	}

	if *benchJSON != "" {
		for k, v := range map[string]float64{
			"shards":             float64(*shards),
			"clients":            float64(*clients),
			"rate_rps":           *rate,
			"completed":          float64(snap.Completed),
			"shed":               float64(snap.ShedCount),
			"throughput_sim":     simTput,
			"throughput_wall":    wallRPS,
			"p50_sojourn_us":     p50,
			"p95_sojourn_us":     p95,
			"p99_sojourn_us":     p99,
			"mean_sojourn_us":    snap.Latency.Mean(),
			"gomaxprocs_value":   float64(runtime.GOMAXPROCS(0)),
			"writes_removed_pct": snap.Engine.WriteRemovalPct(),
		} {
			track.Annotate(k, v)
		}
		// Merge rather than overwrite: a shard sweep appends one
		// entry per run (named by -bench-label) to the trajectory
		// podbench wrote, building the flood-capacity curve in place.
		if err := track.MergeJSON(*benchJSON, *benchLabel, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "podload: %v\n", err)
			os.Exit(1)
		}
	}
}

func rateString(r float64) string {
	if r <= 0 {
		return "flood"
	}
	return fmt.Sprintf("%.0f/s", r)
}

func usString(us int64) string {
	if us <= 0 {
		return "off"
	}
	return fmt.Sprintf("%dus", us)
}

// writeSnapshot writes one snapshot encoding ("-" = stdout) via the
// given writer method.
func writeSnapshot(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
