// Command podload drives the sharded volume-serving layer
// (internal/server) with an open-loop synthetic workload and reports
// serving throughput and latency percentiles.
//
// Usage:
//
//	podload [-trace mixed|web-vm|homes|mail] [-scale f] [-scheme s]
//	        [-shards n] [-clients n] [-rate r] [-requests n]
//	        [-write-ratio f] [-queue n] [-batch n] [-policy block|shed]
//	        [-route-chunks n] [-bench-json f] [-bench-label s]
//
// The generator is open-loop: every request's virtual arrival time is
// fixed up front from the arrival rate (-rate, requests per simulated
// second; 0 floods every arrival at t=0), independent of completions —
// an overloaded configuration therefore shows its congestion as
// queueing delay in the latency percentiles rather than by slowing the
// injection. Client goroutines submit concurrently, each owning a
// disjoint subset of shards (client = shard mod clients): every shard
// receives its arrival stream in schedule order, so the per-shard FCFS
// queueing model measures real congestion, not wall-clock submission
// skew between clients. -clients is therefore capped at -shards.
//
// Reported latency is virtual-time sojourn (queue wait + service);
// reported throughput is completed requests per virtual second across
// the serving window, plus the wall-clock rate of the harness itself.
// With -bench-json the run joins the internal/perf trajectory, with
// throughput and percentiles attached to the entry's "extra" map.
//
// The process exits 0 on success, 1 if the run completes no requests
// or hits an error, and 2 on bad flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/experiments"
	"github.com/pod-dedup/pod/internal/perf"
	"github.com/pod-dedup/pod/internal/server"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
	"github.com/pod-dedup/pod/internal/workload"
)

func main() {
	traceName := flag.String("trace", "mixed", "workload: mixed, web-vm, homes, or mail")
	scale := flag.Float64("scale", 0.1, "trace scale (1.0 = paper request counts)")
	scheme := flag.String("scheme", experiments.POD, "storage scheme per shard (Native, Full-Dedupe, iDedup, Select-Dedupe, POD, ...)")
	shards := flag.Int("shards", 1, "independent engine shards")
	clients := flag.Int("clients", 0, "client goroutines (default: one per shard)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate, requests per simulated second (0 = flood)")
	requests := flag.Int("requests", 0, "cap on requests to serve (0 = whole trace)")
	writeRatio := flag.Float64("write-ratio", -1, "override the profile's write fraction, 0..1 (-1 = keep; named traces only)")
	queue := flag.Int("queue", 128, "per-shard queue depth")
	batch := flag.Int("batch", 32, "max requests a shard worker serves per drain")
	policyName := flag.String("policy", "block", "backpressure when a shard queue fills: block or shed")
	routeChunks := flag.Uint64("route-chunks", 0, "routing granule in 4 KiB chunks (0 = default)")
	benchJSON := flag.String("bench-json", "", "append this run to a perf trajectory JSON file")
	benchLabel := flag.String("bench-label", "podload", "label recorded in the -bench-json trajectory")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: podload [-trace mixed|web-vm|homes|mail] [-scale f] [-scheme s] [-shards n]\n")
		fmt.Fprintf(os.Stderr, "               [-clients n] [-rate r] [-requests n] [-write-ratio f] [-queue n]\n")
		fmt.Fprintf(os.Stderr, "               [-batch n] [-policy block|shed] [-route-chunks n] [-bench-json f] [-bench-label s]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "podload: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	policy, err := server.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "podload: %v\n", err)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "podload: -shards must be at least 1")
		os.Exit(2)
	}
	if *clients == 0 || *clients > *shards {
		*clients = *shards
	}

	// --- workload ---
	var (
		tr   *trace.Trace
		prof workload.Profile
	)
	switch *traceName {
	case "mixed":
		if *writeRatio >= 0 {
			fmt.Fprintln(os.Stderr, "podload: -write-ratio applies to named traces, not mixed")
			os.Exit(2)
		}
		var dims workload.MixedDims
		tr, _, dims = workload.MixedTrace(*scale)
		prof = workload.Profile{Name: "mixed", FootprintChunks: dims.FootprintChunks, MemoryBytes: dims.MemoryBytes}
	default:
		p, ok := workload.ByName(*traceName)
		if !ok {
			fmt.Fprintf(os.Stderr, "podload: unknown trace %q (want mixed, web-vm, homes, or mail)\n", *traceName)
			os.Exit(2)
		}
		if *writeRatio >= 0 {
			if *writeRatio > 1 {
				fmt.Fprintln(os.Stderr, "podload: -write-ratio must be in [0,1]")
				os.Exit(2)
			}
			p.WriteRatio = *writeRatio
			p.PhaseLen = 0 // flat mix: the burst phases would override the ratio
		}
		tr, _ = workload.Generate(p, *scale)
		prof = p
	}
	if *requests > 0 && *requests < len(tr.Requests) {
		tr.Requests = tr.Requests[:*requests]
	}
	n := len(tr.Requests)
	if n == 0 {
		fmt.Fprintln(os.Stderr, "podload: empty trace")
		os.Exit(1)
	}

	// open-loop arrival schedule: fixed before the run, rate in
	// requests per *simulated* second
	arrivals := make([]sim.Time, n)
	if *rate > 0 {
		for i := range arrivals {
			arrivals[i] = sim.Time(float64(i) * 1e6 / *rate)
		}
	}

	// --- server over per-shard engines ---
	srv, err := server.New(server.Config{
		Shards:     *shards,
		GranChunks: *routeChunks,
		QueueDepth: *queue,
		MaxBatch:   *batch,
		Policy:     policy,
		Timing:     server.Queued,
		NewEngine: func(int) engine.Engine {
			return experiments.NewEngine(*scheme, experiments.BuildConfig(prof, *scale))
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "podload: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("podload: trace=%s scheme=%s shards=%d clients=%d rate=%s requests=%d queue=%d batch=%d policy=%s\n",
		tr.Name, *scheme, *shards, *clients, rateString(*rate), n, *queue, *batch, policy)

	// --- drive ---
	var track perf.Tracker
	var submitErrs int64
	var errMu sync.Mutex
	start := time.Now()
	track.Measure("podload-serve", func() {
		var wg sync.WaitGroup
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					r := &tr.Requests[i]
					if srv.Shard(r.LBA)%*clients != c {
						continue
					}
					err := srv.Submit(&server.Request{
						Arrival: arrivals[i], Op: r.Op, LBA: r.LBA, N: r.N, Content: r.Content,
					})
					if err == server.ErrShed {
						continue // counted by the server
					}
					if err != nil {
						errMu.Lock()
						submitErrs++
						errMu.Unlock()
						return
					}
				}
			}(c)
		}
		wg.Wait()
		srv.Close()
	})
	wall := time.Since(start)

	// --- report ---
	snap := srv.Stats()
	if submitErrs > 0 {
		fmt.Fprintf(os.Stderr, "podload: %d clients aborted on submission errors\n", submitErrs)
		os.Exit(1)
	}
	if snap.Completed == 0 {
		fmt.Fprintln(os.Stderr, "podload: zero completed requests")
		os.Exit(1)
	}

	wallRPS := float64(snap.Completed) / wall.Seconds()
	simTput := snap.Throughput()
	p50 := snap.Latency.Percentile(50)
	p95 := snap.Latency.Percentile(95)
	p99 := snap.Latency.Percentile(99)

	fmt.Printf("completed %d of %d requests (%d shed) in %v wall (%.0f req/s wall)\n",
		snap.Completed, n, snap.ShedCount, wall.Round(time.Millisecond), wallRPS)
	fmt.Printf("simulated: window %v, aggregate throughput %.1f req/s\n",
		snap.LastComplete.Sub(snap.FirstArrival), simTput)
	fmt.Printf("latency (sojourn): p50 %.2fms p95 %.2fms p99 %.2fms mean %.2fms max %.2fms\n",
		p50/1000, p95/1000, p99/1000, snap.Latency.Mean()/1000, float64(snap.Latency.Max())/1000)
	fmt.Printf("dedup: %.1f%% writes removed, %.1f%% chunks deduped, %.1f%% read cache hits, %d blocks used\n",
		snap.Engine.WriteRemovalPct(), snap.Engine.DedupRatioPct(), snap.Engine.CacheHitPct(), snap.UsedBlocks)
	lo, hi := snap.PerShard[0].Completed, snap.PerShard[0].Completed
	for _, ps := range snap.PerShard {
		if ps.Completed < lo {
			lo = ps.Completed
		}
		if ps.Completed > hi {
			hi = ps.Completed
		}
	}
	fmt.Printf("shards: %d, completed/shard min %d max %d\n", snap.Shards, lo, hi)

	if *benchJSON != "" {
		for k, v := range map[string]float64{
			"shards":           float64(*shards),
			"clients":          float64(*clients),
			"rate_rps":         *rate,
			"completed":        float64(snap.Completed),
			"shed":             float64(snap.ShedCount),
			"throughput_sim":   simTput,
			"throughput_wall":  wallRPS,
			"p50_sojourn_us":   p50,
			"p95_sojourn_us":   p95,
			"p99_sojourn_us":   p99,
			"mean_sojourn_us":  snap.Latency.Mean(),
			"gomaxprocs_value": float64(runtime.GOMAXPROCS(0)),
		} {
			track.Annotate(k, v)
		}
		if err := track.WriteJSON(*benchJSON, *benchLabel, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "podload: %v\n", err)
			os.Exit(1)
		}
	}
}

func rateString(r float64) string {
	if r <= 0 {
		return "flood"
	}
	return fmt.Sprintf("%.0f/s", r)
}
