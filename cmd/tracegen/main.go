// Command tracegen generates the synthetic FIU-like traces to a file
// in the text or binary trace format.
//
// Usage:
//
//	tracegen -trace mail -scale 0.5 -format binary -o mail.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/pod-dedup/pod/internal/trace"
	"github.com/pod-dedup/pod/internal/workload"
)

func main() {
	name := flag.String("trace", "web-vm", "trace profile: web-vm, homes, mail or shifted")
	scale := flag.Float64("scale", 1.0, "trace scale (1.0 = paper request count)")
	format := flag.String("format", "text", "output format: text or binary")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var tr *trace.Trace
	var warmup int
	if *name == "shifted" {
		// the shifted-content snapshot family (edit-encoded ContentIDs
		// for the CDC chunking axis; see internal/cdc)
		tr, warmup, _ = workload.ShiftedSnapshot(*scale)
	} else {
		prof, ok := workload.ByName(*name)
		if !ok {
			names := []string{"shifted"}
			for _, p := range workload.Profiles() {
				names = append(names, p.Name)
			}
			fmt.Fprintf(os.Stderr, "tracegen: unknown trace %q (have %s)\n", *name, strings.Join(names, ", "))
			os.Exit(2)
		}
		tr, warmup = workload.Generate(prof, *scale)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	var err error
	switch *format {
	case "text":
		err = trace.WriteText(w, tr)
	case "binary":
		err = trace.WriteBinary(w, tr)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d requests (%d warm-up) of %s\n",
		len(tr.Requests), warmup, tr.Name)
}
