// Command podsim replays one trace against one storage scheme with
// tunable platform knobs, printing a detailed measurement report.
//
// Usage:
//
//	podsim -scheme POD -trace mail -scale 0.5
//	podsim -scheme Select-Dedupe -file mytrace.txt -memory 64
//	podsim -scheme POD -trace shifted -chunking gear
package main

import (
	"flag"
	"fmt"
	"os"

	pod "github.com/pod-dedup/pod"
	"github.com/pod-dedup/pod/internal/cdc"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/experiments"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/replay"
	"github.com/pod-dedup/pod/internal/stats"
	"github.com/pod-dedup/pod/internal/trace"
	"github.com/pod-dedup/pod/internal/workload"
)

func main() {
	scheme := flag.String("scheme", "POD", "Native | Full-Dedupe | iDedup | Select-Dedupe | POD")
	traceName := flag.String("trace", "web-vm", "built-in trace: web-vm, homes, mail, shifted")
	chunking := flag.String("chunking", "fixed4k", "chunker: fixed4k, gear, or seqcdc (CDC needs a dedup scheme, not Native)")
	file := flag.String("file", "", "replay a trace file instead of a built-in (text format)")
	fiu := flag.Bool("fiu", false, "treat -file as an FIU SRT record stream (reassembled at 1 ms)")
	scale := flag.Float64("scale", 1.0, "built-in trace scale")
	disks := flag.Int("disks", 4, "spindles")
	diskBlocks := flag.Uint64("diskblocks", 0, "blocks per spindle (default: derived from trace)")
	stripeKB := flag.Int("stripe", 64, "stripe unit in KB")
	memoryMB := flag.Float64("memory", 0, "cache DRAM in MB (default: trace profile)")
	indexFrac := flag.Float64("indexfrac", 0.5, "initial index-cache share")
	threshold := flag.Int("threshold", 3, "Select-Dedupe redundancy threshold (chunks)")
	idedupThresh := flag.Int("idedup-threshold", 8, "iDedup minimum duplicate sequence (chunks)")
	history := flag.Bool("history", false, "print the iCache partition trajectory (POD only)")
	latencies := flag.String("latencies", "", "write per-request latencies as CSV to this file")
	flag.Parse()

	schemeName, err := pod.ParseScheme(*scheme)
	if err != nil {
		fatal(err)
	}
	*scheme = string(schemeName)
	// fail fast on an unknown chunker name, before any trace is built
	algo, err := cdc.ParseAlgo(*chunking)
	if err != nil {
		fatal(err)
	}
	if algo != cdc.Fixed4K && schemeName == pod.SchemeNative {
		fatal(fmt.Errorf("-chunking %s needs a deduplicating scheme; Native never consults chunk content", algo))
	}

	var tr *trace.Trace
	var warmup int
	var shiftedDims workload.MixedDims
	shifted := *file == "" && *traceName == "shifted"
	prof, profOK := workload.ByName(*traceName)
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if *fiu {
			tr, err = trace.ReadFIU(f, *file, trace.FIUOptions{})
			if err == nil {
				tr.Requests = trace.Reassemble(tr.Requests, 1000)
			}
		} else {
			tr, err = trace.ReadText(f, *file)
		}
		if err != nil {
			fatal(err)
		}
	} else if shifted {
		tr, warmup, shiftedDims = workload.ShiftedSnapshot(*scale)
	} else {
		if !profOK {
			fatal(fmt.Errorf("unknown trace %q", *traceName))
		}
		tr, warmup = workload.Generate(prof, *scale)
	}

	blocks := *diskBlocks
	if blocks == 0 {
		switch {
		case shifted:
			blocks = shiftedDims.FootprintChunks
		case profOK && *file == "":
			blocks = prof.FootprintChunks / 2
		default:
			blocks = 1 << 19
		}
	}
	ds := make([]*disk.Disk, *disks)
	for i := range ds {
		ds[i] = disk.New(disk.DefaultParams(blocks))
	}
	mem := int64(*memoryMB * (1 << 20))
	if mem == 0 {
		switch {
		case shifted:
			// the shifted profile's budget is tuned to its chunk
			// fingerprint population, not the request count
			mem = shiftedDims.MemoryBytes
		case profOK && *file == "":
			mem = int64(float64(prof.MemoryBytes) * *scale)
		default:
			mem = 32 << 20
		}
		if mem < 1<<19 {
			mem = 1 << 19
		}
	}
	cfg := engine.Config{
		Array:           raid.New(raid.RAID5, ds, uint64(*stripeKB/4)),
		MemoryBytes:     mem,
		IndexFrac:       *indexFrac,
		Threshold:       *threshold,
		IDedupThreshold: *idedupThresh,
		NVRAMBytes:      int(blocks * uint64(*disks) * 24),
		Chunking:        cdc.Params{Algo: algo},
	}
	eng := experiments.NewEngine(*scheme, cfg)

	var lat *os.File
	if *latencies != "" {
		var err error
		lat, err = os.Create(*latencies)
		if err != nil {
			fatal(err)
		}
		defer lat.Close()
		fmt.Fprintln(lat, "seq,time_us,op,lba,chunks,latency_us")
	}

	var res *replay.Result
	if lat == nil {
		res = replay.Run(eng, tr, warmup)
	} else {
		res = replay.RunObserved(eng, tr, warmup, func(i int, r *trace.Request, rt int64) {
			op := "R"
			if r.Op == trace.Write {
				op = "W"
			}
			fmt.Fprintf(lat, "%d,%d,%s,%d,%d,%d\n", i, int64(r.Time), op, r.LBA, r.N, rt)
		})
	}

	st := res.Stats
	t := stats.NewTable(fmt.Sprintf("%s on %s (%d requests, %d warm-up)",
		*scheme, tr.Name, len(tr.Requests), warmup), "Metric", "Value")
	if algo != cdc.Fixed4K {
		t.AddRow("Chunker", algo.String())
	}
	t.AddRow("Mean response time", stats.Ms(res.MeanRT))
	t.AddRow("Mean write RT", stats.Ms(res.MeanWriteRT))
	t.AddRow("Mean read RT", stats.Ms(res.MeanReadRT))
	t.AddRow("P95 write RT", stats.Ms(res.P95WriteRT))
	t.AddRow("P95 read RT", stats.Ms(res.P95ReadRT))
	t.AddRow("Write requests removed", stats.Pct(st.WriteRemovalPct()))
	t.AddRow("Chunks deduplicated", stats.Pct(st.DedupRatioPct()))
	t.AddRow("Read-cache hit ratio", stats.Pct(st.CacheHitPct()))
	t.AddRow("Request categories 1/2/3", fmt.Sprintf("%d / %d / %d", st.Cat1, st.Cat2, st.Cat3))
	t.AddRow("On-disk index lookups", fmt.Sprintf("%d", st.IndexDiskIOs))
	t.AddRow("Swap-in I/Os", fmt.Sprintf("%d", st.SwapInIOs))
	t.AddRow("Physical blocks used", fmt.Sprintf("%d", res.UsedBlocks))
	t.AddRow("Map-table NVRAM peak", fmt.Sprintf("%.2f MB", float64(st.NVRAMPeakBytes)/(1<<20)))
	fmt.Println(t)

	if *history {
		type baser interface{ Base() *engine.Base }
		if b, ok := eng.(baser); ok {
			pts := b.Base().IC.History()
			ht := stats.NewTable(fmt.Sprintf("iCache partition trajectory (%d repartitions)", len(pts)),
				"Virtual time", "Index share")
			for _, p := range pts {
				ht.AddRow(p.Time.String(), stats.Pct(p.IndexFrac*100))
			}
			fmt.Println(ht)
		} else {
			fmt.Println("(-history: scheme exposes no cache controller)")
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "podsim: %v\n", err)
	os.Exit(1)
}
