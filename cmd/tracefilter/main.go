// Command tracefilter transforms trace files: clip a time window,
// keep only one operation type, reassemble split records, and convert
// between the text, binary and FIU formats.
//
// Usage:
//
//	tracefilter -from 10s -to 60s -ops W -o clipped.trace full.trace
//	tracefilter -in-fiu -reassemble 1ms -out-binary -o homes.bin homes.srt
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

func main() {
	inFIU := flag.Bool("in-fiu", false, "input is an FIU SRT record stream")
	inBinary := flag.Bool("in-binary", false, "input is in the binary format")
	fiuSector := flag.Int("fiu-sector", 512, "FIU record address unit in bytes")
	outBinary := flag.Bool("out-binary", false, "write the binary format (default text)")
	from := flag.Duration("from", 0, "drop requests before this offset (e.g. 10s)")
	to := flag.Duration("to", 0, "drop requests at or after this offset (0 = no limit)")
	ops := flag.String("ops", "", "keep only this op type: W or R (default both)")
	reassemble := flag.Duration("reassemble", 0, "merge split records within this window")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracefilter [flags] input-trace")
		flag.PrintDefaults()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var tr *trace.Trace
	switch {
	case *inFIU:
		tr, err = trace.ReadFIU(f, flag.Arg(0), trace.FIUOptions{SectorBytes: *fiuSector})
	case *inBinary:
		tr, err = trace.ReadBinary(f)
	default:
		tr, err = trace.ReadText(f, flag.Arg(0))
	}
	if err != nil {
		fatal(err)
	}
	total := len(tr.Requests)

	if *from > 0 || *to > 0 {
		lo := sim.Time(from.Microseconds())
		hi := sim.Time(to.Microseconds())
		kept := tr.Requests[:0]
		for _, r := range tr.Requests {
			if r.Time < lo {
				continue
			}
			if *to > 0 && r.Time >= hi {
				continue
			}
			kept = append(kept, r)
		}
		tr.Requests = kept
	}
	if *ops != "" {
		want, err := trace.ParseOp(*ops)
		if err != nil {
			fatal(err)
		}
		kept := tr.Requests[:0]
		for _, r := range tr.Requests {
			if r.Op == want {
				kept = append(kept, r)
			}
		}
		tr.Requests = kept
	}
	if *reassemble > 0 {
		tr.Requests = trace.Reassemble(tr.Requests, sim.Duration(reassemble.Microseconds()))
	}

	w := os.Stdout
	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer g.Close()
		w = g
	}
	if *outBinary {
		err = trace.WriteBinary(w, tr)
	} else {
		err = trace.WriteText(w, tr)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracefilter: %d requests in, %d out\n", total, len(tr.Requests))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracefilter: %v\n", err)
	os.Exit(1)
}
