// Command tracestat analyzes a trace file (or a built-in profile) and
// prints the paper's workload-characterization statistics: Table II,
// the Figure 1 redundancy-by-size distribution, and the Figure 2 I/O
// vs capacity redundancy split.
//
// Usage:
//
//	tracestat mail.trace
//	tracestat -builtin homes -scale 0.5
//	tracestat -reassemble 1000 split.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/stats"
	"github.com/pod-dedup/pod/internal/trace"
	"github.com/pod-dedup/pod/internal/workload"
)

func main() {
	builtin := flag.String("builtin", "", "analyze a built-in profile (web-vm, homes, mail) instead of a file")
	scale := flag.Float64("scale", 1.0, "scale for -builtin")
	binary := flag.Bool("binary", false, "input file is in the binary format")
	fiu := flag.Bool("fiu", false, "input file is an FIU SRT record stream")
	fiuSector := flag.Int("fiu-sector", 512, "FIU record address unit in bytes")
	reassemble := flag.Int64("reassemble", 0, "merge split records within this window (µs) before analysis")
	flag.Parse()

	var tr *trace.Trace
	switch {
	case *builtin != "":
		prof, ok := workload.ByName(*builtin)
		if !ok {
			fmt.Fprintf(os.Stderr, "tracestat: unknown builtin %q\n", *builtin)
			os.Exit(2)
		}
		tr, _ = workload.Generate(prof, *scale)
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		switch {
		case *fiu:
			tr, err = trace.ReadFIU(f, flag.Arg(0), trace.FIUOptions{SectorBytes: *fiuSector})
		case *binary:
			tr, err = trace.ReadBinary(f)
		default:
			tr, err = trace.ReadText(f, flag.Arg(0))
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: tracestat [-builtin name | file] [-binary] [-reassemble µs]")
		os.Exit(2)
	}

	if *reassemble > 0 {
		before := len(tr.Requests)
		tr.Requests = trace.Reassemble(tr.Requests, sim.Duration(*reassemble))
		fmt.Printf("reassembled %d records into %d requests\n\n", before, len(tr.Requests))
	}

	a := trace.Analyze(tr)
	tb := stats.NewTable("Trace characteristics (Table II)", "Metric", "Value")
	tb.AddRow("Name", tr.Name)
	tb.AddRow("I/Os", fmt.Sprintf("%d", a.Chars.IOs))
	tb.AddRow("Write ratio", stats.Pct(a.Chars.WriteRatio))
	tb.AddRow("Avg request size", fmt.Sprintf("%.1f KB", a.Chars.AvgReqKB))
	fmt.Println(tb)

	f1 := stats.NewTable("I/O redundancy by write-request size (Figure 1)",
		"Size", "Total", "Redundant", "Redundant%")
	for _, b := range a.Buckets {
		label := fmt.Sprintf("%dKB", b.LabelKB)
		if b.LabelKB == trace.BucketLabelsKB[len(trace.BucketLabelsKB)-1] {
			label = "≥" + label
		}
		f1.AddRow(label, fmt.Sprintf("%d", b.Total), fmt.Sprintf("%d", b.Redundant),
			stats.Pct(stats.Ratio(b.Redundant, b.Total)))
	}
	fmt.Println(f1)

	f2 := stats.NewTable("I/O vs capacity redundancy (Figure 2)", "Metric", "% of write data")
	f2.AddRow("Same-location redundancy", stats.Pct(a.SameLBAPct))
	f2.AddRow("Different-location (capacity) redundancy", stats.Pct(a.DiffLBAPct))
	f2.AddRow("Total I/O redundancy", stats.Pct(a.IORedundancyPct))
	fmt.Println(f2)
}
