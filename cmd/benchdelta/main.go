// benchdelta compares a freshly generated perf trajectory against a
// committed reference (BENCH_replay.json) and exits non-zero when any
// shared entry regressed by more than the allowed fraction in
// wall-clock time or heap allocations.
//
// Usage:
//
//	benchdelta -ref BENCH_replay.json -new /tmp/bench.json
//	           [-max-wall-frac 0.15] [-min-wall-ms 1000]
//	           [-max-alloc-frac 0.10] [-min-allocs 100000]
//
// Entries are matched by name; names present in only one file are
// logged and skipped, never failed (the reference carries flood-sweep
// entries a plain podbench run does not regenerate, and a new bench
// label lands one run before its baseline is committed). The two
// gates are deliberately asymmetric: allocation counts are
// deterministic for a given binary and trace, so they get the tight
// threshold, while wall-clock carries scheduler and cache noise —
// especially in CI, where the bench run follows the full race-detector
// suite — so it gets a looser fraction and a floor that exempts
// sub-second entries whose relative noise dwarfs any real signal. The
// two trajectories must be recorded at the same scale — comparing a
// 0.1-scale run against full-scale numbers would flag nothing but the
// scale itself.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/pod-dedup/pod/internal/perf"
)

// limits groups the regression thresholds compare applies.
type limits struct {
	maxWallFrac  float64 // allowed wall-clock regression fraction
	maxAllocFrac float64 // allowed allocation regression fraction
	minWallMS    float64 // ignore wall deltas on reference entries shorter than this
	minAllocs    uint64  // ignore alloc deltas on reference entries smaller than this
}

// compare walks the new trajectory against the reference, writing the
// per-entry report to w, and returns the number of entries that
// regressed beyond the limits. Entries whose name has no committed
// baseline are logged and skipped — a fresh bench label must be able
// to land one run before its reference exists — as are reference-only
// names. A scale mismatch is the one unconditional error: every delta
// would be an artifact of the scale, so nothing can be compared.
func compare(w io.Writer, refT, curT *perf.Trajectory, lim limits) (int, error) {
	if refT.Scale != curT.Scale {
		return 0, fmt.Errorf("scale mismatch: reference %g vs new %g", refT.Scale, curT.Scale)
	}

	refByName := make(map[string]*perf.Entry, len(refT.Entries))
	for i := range refT.Entries {
		e := &refT.Entries[i]
		if _, dup := refByName[e.Name]; !dup {
			refByName[e.Name] = e
		}
	}

	regressions := 0
	for i := range curT.Entries {
		n := &curT.Entries[i]
		r, ok := refByName[n.Name]
		if !ok {
			fmt.Fprintf(w, "benchdelta: %-12s new entry (no reference) — skipped\n", n.Name)
			continue
		}
		delete(refByName, n.Name)
		if r.WallMS >= lim.minWallMS {
			frac := n.WallMS/r.WallMS - 1
			if frac > lim.maxWallFrac {
				fmt.Fprintf(w, "benchdelta: %-12s wall  %9.1fms -> %9.1fms (%+.1f%%) REGRESSION\n",
					n.Name, r.WallMS, n.WallMS, 100*frac)
				regressions++
			} else {
				fmt.Fprintf(w, "benchdelta: %-12s wall  %9.1fms -> %9.1fms (%+.1f%%)\n",
					n.Name, r.WallMS, n.WallMS, 100*frac)
			}
		}
		if r.Allocs >= lim.minAllocs {
			frac := float64(n.Allocs)/float64(r.Allocs) - 1
			if frac > lim.maxAllocFrac {
				fmt.Fprintf(w, "benchdelta: %-12s alloc %9d   -> %9d   (%+.1f%%) REGRESSION\n",
					n.Name, r.Allocs, n.Allocs, 100*frac)
				regressions++
			}
		}
	}
	for name := range refByName {
		fmt.Fprintf(w, "benchdelta: %-12s only in reference — skipped\n", name)
	}
	return regressions, nil
}

func main() {
	ref := flag.String("ref", "BENCH_replay.json", "committed reference trajectory")
	cur := flag.String("new", "", "freshly generated trajectory to check (required)")
	maxWallFrac := flag.Float64("max-wall-frac", 0.15, "allowed wall-clock regression fraction (loose: wall is noisy)")
	maxAllocFrac := flag.Float64("max-alloc-frac", 0.10, "allowed allocation regression fraction (tight: allocs are deterministic)")
	minWallMS := flag.Float64("min-wall-ms", 1000, "ignore wall regressions on reference entries shorter than this")
	minAllocs := flag.Uint64("min-allocs", 100000, "ignore alloc regressions on reference entries smaller than this")
	flag.Parse()
	if *cur == "" {
		flag.Usage()
		os.Exit(2)
	}

	refT, err := perf.ReadJSON(*ref)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdelta: %v\n", err)
		os.Exit(1)
	}
	curT, err := perf.ReadJSON(*cur)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdelta: %v\n", err)
		os.Exit(1)
	}

	regressions, err := compare(os.Stdout, refT, curT, limits{
		maxWallFrac:  *maxWallFrac,
		maxAllocFrac: *maxAllocFrac,
		minWallMS:    *minWallMS,
		minAllocs:    *minAllocs,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdelta: %v\n", err)
		os.Exit(1)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdelta: %d regression(s) beyond wall %.0f%% / alloc %.0f%%\n",
			regressions, 100**maxWallFrac, 100**maxAllocFrac)
		os.Exit(1)
	}
	fmt.Printf("benchdelta: ok (%d entries compared within wall %.0f%% / alloc %.0f%% of %s)\n",
		len(curT.Entries), 100**maxWallFrac, 100**maxAllocFrac, *ref)
}
