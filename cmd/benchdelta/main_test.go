package main

import (
	"strings"
	"testing"

	"github.com/pod-dedup/pod/internal/perf"
)

func traj(scale float64, entries ...perf.Entry) *perf.Trajectory {
	return &perf.Trajectory{Scale: scale, Entries: entries}
}

// TestNewEntryWithoutBaselineIsLoggedAndSkipped: a trajectory entry
// whose label has no committed baseline must be reported but never
// counted as a regression — a fresh bench label lands one run before
// its reference exists.
func TestNewEntryWithoutBaselineIsLoggedAndSkipped(t *testing.T) {
	ref := traj(1, perf.Entry{Name: "replay", WallMS: 2000, Allocs: 1e6})
	cur := traj(1,
		perf.Entry{Name: "replay", WallMS: 2000, Allocs: 1e6},
		perf.Entry{Name: "globalfp-8", WallMS: 9e9, Allocs: 9e9}, // absurd: must still not fail
	)
	var out strings.Builder
	regressions, err := compare(&out, ref, cur, limits{maxWallFrac: 0.15, maxAllocFrac: 0.10, minWallMS: 1000, minAllocs: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Fatalf("unreferenced entry counted as regression: %d\n%s", regressions, out.String())
	}
	if !strings.Contains(out.String(), "globalfp-8") || !strings.Contains(out.String(), "no reference") {
		t.Fatalf("unreferenced entry not logged:\n%s", out.String())
	}
}

// TestReferenceOnlyEntryIsLoggedAndSkipped: names only in the
// committed baseline (e.g. flood-sweep entries a plain run does not
// regenerate) are reported, not failed.
func TestReferenceOnlyEntryIsLoggedAndSkipped(t *testing.T) {
	ref := traj(1,
		perf.Entry{Name: "replay", WallMS: 2000, Allocs: 1e6},
		perf.Entry{Name: "flood-16", WallMS: 5000, Allocs: 2e6},
	)
	cur := traj(1, perf.Entry{Name: "replay", WallMS: 2000, Allocs: 1e6})
	var out strings.Builder
	regressions, err := compare(&out, ref, cur, limits{maxWallFrac: 0.15, maxAllocFrac: 0.10, minWallMS: 1000, minAllocs: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Fatalf("reference-only entry counted as regression: %d\n%s", regressions, out.String())
	}
	if !strings.Contains(out.String(), "flood-16") || !strings.Contains(out.String(), "only in reference") {
		t.Fatalf("reference-only entry not logged:\n%s", out.String())
	}
}

// TestSharedEntryRegressionsStillFail: the skip paths must not eat
// real regressions on shared names.
func TestSharedEntryRegressionsStillFail(t *testing.T) {
	ref := traj(1, perf.Entry{Name: "replay", WallMS: 2000, Allocs: 1e6})
	cur := traj(1, perf.Entry{Name: "replay", WallMS: 3000, Allocs: 2e6})
	var out strings.Builder
	regressions, err := compare(&out, ref, cur, limits{maxWallFrac: 0.15, maxAllocFrac: 0.10, minWallMS: 1000, minAllocs: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 2 {
		t.Fatalf("want 2 regressions (wall + alloc), got %d\n%s", regressions, out.String())
	}
}

// TestFloorsExemptSmallEntries: reference entries under the wall and
// alloc floors never flag, whatever the delta.
func TestFloorsExemptSmallEntries(t *testing.T) {
	ref := traj(1, perf.Entry{Name: "tiny", WallMS: 10, Allocs: 100})
	cur := traj(1, perf.Entry{Name: "tiny", WallMS: 1000, Allocs: 10000})
	var out strings.Builder
	regressions, err := compare(&out, ref, cur, limits{maxWallFrac: 0.15, maxAllocFrac: 0.10, minWallMS: 1000, minAllocs: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Fatalf("sub-floor entry flagged: %d\n%s", regressions, out.String())
	}
}

// TestScaleMismatchIsAnError: trajectories at different scales cannot
// be compared at all.
func TestScaleMismatchIsAnError(t *testing.T) {
	ref := traj(1, perf.Entry{Name: "replay", WallMS: 2000, Allocs: 1e6})
	cur := traj(0.1, perf.Entry{Name: "replay", WallMS: 200, Allocs: 1e5})
	var out strings.Builder
	if _, err := compare(&out, ref, cur, limits{}); err == nil {
		t.Fatal("scale mismatch accepted")
	}
}
