package pod

import (
	"strings"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Scheme() != SchemePOD {
		t.Fatalf("default scheme = %s, want POD", sys.Scheme())
	}
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Scheme: "bogus"},
		{Disks: 2},        // too few for RAID5
		{StripeUnitKB: 6}, // not chunk-aligned
		{MemoryMB: -1},    // negative budget
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := New(Config{Disks: 2, RAID0: true}); err != nil {
		t.Errorf("2-disk RAID0 should be accepted: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, scheme := range Schemes() {
		sys, err := New(Config{Scheme: scheme, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := sys.Write(0, 100, []uint64{11, 22, 33})
		if err != nil || rt <= 0 {
			t.Fatalf("%s: write rt=%d err=%v", scheme, rt, err)
		}
		rt, err = sys.Read(1_000_000, 100, 3)
		if err != nil || rt <= 0 {
			t.Fatalf("%s: read rt=%d err=%v", scheme, rt, err)
		}
		for i, want := range []uint64{11, 22, 33} {
			got, ok := sys.ReadBack(100 + uint64(i))
			if !ok || got != want {
				t.Fatalf("%s: readback lba %d = %d,%v want %d", scheme, 100+i, got, ok, want)
			}
		}
	}
}

func TestTimeOrderingEnforced(t *testing.T) {
	sys, _ := New(Config{})
	if _, err := sys.Write(1000, 0, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Write(500, 1, []uint64{2}); err == nil {
		t.Fatal("out-of-order request must be rejected")
	}
}

func TestEmptyRequestsRejected(t *testing.T) {
	sys, _ := New(Config{})
	if _, err := sys.Write(0, 0, nil); err == nil {
		t.Fatal("empty write must fail")
	}
	if _, err := sys.Read(0, 0, 0); err == nil {
		t.Fatal("empty read must fail")
	}
}

func TestDeduplicationVisibleThroughAPI(t *testing.T) {
	sys, err := New(Config{Scheme: SchemeSelectDedupe, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.Write(0, 0, []uint64{7})
	sys.Write(1_000_000, 500, []uint64{7}) // same content elsewhere
	st := sys.Stats()
	if st.WritesRemovedPct != 50 {
		t.Fatalf("removed = %.1f%%, want 50%%", st.WritesRemovedPct)
	}
	if st.Category1 != 1 {
		t.Fatalf("cat1 = %d, want 1", st.Category1)
	}
	if st.UsedBlocks != 1 {
		t.Fatalf("used = %d blocks, want 1 (deduplicated)", st.UsedBlocks)
	}
}

func TestGenerateWorkload(t *testing.T) {
	reqs, warm, err := GenerateWorkload("web-vm", 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 || warm < 0 || warm >= len(reqs) {
		t.Fatalf("len=%d warm=%d", len(reqs), warm)
	}
	if _, _, err := GenerateWorkload("nope", 1); err == nil {
		t.Fatal("unknown workload must fail")
	}
	if _, _, err := GenerateWorkload("mail", 0); err == nil {
		t.Fatal("zero scale must fail")
	}
}

func TestReplayAndReset(t *testing.T) {
	reqs, warm, err := GenerateWorkload("homes", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{Scheme: SchemePOD, DiskBlocks: 1 << 18, MemoryMB: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Replay(reqs[:warm]); err != nil {
		t.Fatal(err)
	}
	sys.ResetStats()
	sum, err := sys.Replay(reqs[warm:])
	if err != nil {
		t.Fatal(err)
	}
	if sum.Reads+sum.Writes != int64(len(reqs)-warm) {
		t.Fatalf("measured %d requests, want %d", sum.Reads+sum.Writes, len(reqs)-warm)
	}
	if !strings.Contains(sum.String(), "POD") {
		t.Fatalf("summary string = %q", sum.String())
	}
}

func TestWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 3 || names[0] != "web-vm" || names[2] != "mail" {
		t.Fatalf("names = %v", names)
	}
}

func TestRunExperimentSmall(t *testing.T) {
	out, err := RunExperiment("table2", 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"web-vm", "homes", "mail"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
	if _, err := RunExperiment("bogus", 0.01, 1); err == nil {
		t.Fatal("unknown experiment must fail")
	}
	if _, err := RunExperiment("fig8", -1, 1); err == nil {
		t.Fatal("bad scale must fail")
	}
	out, err = RunExperiment("table1", 1, 1)
	if err != nil || !strings.Contains(out, "POD") {
		t.Fatalf("table1: %v", err)
	}
}

func TestExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 12 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestCrashRecoveryThroughAPI(t *testing.T) {
	sys, err := New(Config{Scheme: SchemePOD, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.Write(0, 0, []uint64{1, 2})
	sys.Write(1_000_000, 100, []uint64{1, 2}) // deduplicated copy
	n, err := sys.CrashAndRecover()
	if err != nil || n == 0 {
		t.Fatalf("recover: n=%d err=%v", n, err)
	}
	for _, lba := range []uint64{0, 1, 100, 101} {
		want := uint64(1 + lba%2)
		if got, ok := sys.ReadBack(lba); !ok || got != want {
			t.Fatalf("lba %d = %d,%v want %d", lba, got, ok, want)
		}
	}
	// unsupported scheme reports an error
	nat, _ := New(Config{Scheme: SchemeNative})
	if _, err := nat.CrashAndRecover(); err == nil {
		t.Fatal("Native must not claim recovery support")
	}
}

func TestSchemesComparable(t *testing.T) {
	// the paper's headline, through the public API: POD beats Native
	// on a redundant workload
	reqs, warm, _ := GenerateWorkload("web-vm", 0.02)
	results := map[Scheme]Summary{}
	for _, scheme := range []Scheme{SchemeNative, SchemePOD} {
		sys, err := New(Config{Scheme: scheme, MemoryMB: 1})
		if err != nil {
			t.Fatal(err)
		}
		sys.Replay(reqs[:warm])
		sys.ResetStats()
		sum, err := sys.Replay(reqs[warm:])
		if err != nil {
			t.Fatal(err)
		}
		results[scheme] = sum
	}
	if results[SchemePOD].MeanWriteMicros >= results[SchemeNative].MeanWriteMicros {
		t.Errorf("POD write RT (%.0fµs) must beat Native (%.0fµs)",
			results[SchemePOD].MeanWriteMicros, results[SchemeNative].MeanWriteMicros)
	}
	if results[SchemePOD].UsedBlocks >= results[SchemeNative].UsedBlocks {
		t.Errorf("POD capacity (%d) must beat Native (%d)",
			results[SchemePOD].UsedBlocks, results[SchemeNative].UsedBlocks)
	}
}

func TestNVRAMDisabledBlocksRecovery(t *testing.T) {
	sys, err := New(Config{Scheme: SchemePOD, NVRAMKB: -1})
	if err != nil {
		t.Fatal(err)
	}
	sys.Write(0, 0, []uint64{1})
	if _, err := sys.CrashAndRecover(); err == nil {
		t.Fatal("recovery must fail with journaling disabled")
	}
}

func TestLayoutSelection(t *testing.T) {
	if _, err := New(Config{Layout: "raid1", Disks: 4}); err != nil {
		t.Fatalf("raid1: %v", err)
	}
	if _, err := New(Config{Layout: "raid1", Disks: 3}); err == nil {
		t.Fatal("odd-disk raid1 must fail")
	}
	if _, err := New(Config{Layout: "zfs"}); err == nil {
		t.Fatal("unknown layout must fail")
	}
	sys, err := New(Config{Layout: "raid0", Disks: 1, Scheme: SchemeNative})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Write(0, 0, []uint64{1}); err != nil {
		t.Fatal(err)
	}
}

func TestCleanerConfigAccepted(t *testing.T) {
	sys, err := New(Config{Scheme: SchemePOD, Cleaner: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	for i := 0; i < 200; i++ {
		now += 20_000
		if _, err := sys.Write(now, uint64(i%50)*4, []uint64{uint64(1000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	// consistency preserved under churn with the cleaner armed
	for i := 150; i < 200; i++ {
		lba := uint64(i%50) * 4
		if _, ok := sys.ReadBack(lba); !ok {
			t.Fatalf("lba %d lost", lba)
		}
	}
}
