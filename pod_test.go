package pod

import (
	"strings"
	"testing"
)

// wr and rd build requests for the shared Do API.
func wr(tm int64, lba uint64, ids ...ContentID) *Request {
	return &Request{Time: tm, Op: OpWrite, LBA: lba, Content: ids}
}

func rd(tm int64, lba uint64, n int) *Request {
	return &Request{Time: tm, Op: OpRead, LBA: lba, Chunks: n}
}

func TestNewDefaults(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Scheme() != SchemePOD {
		t.Fatalf("default scheme = %s, want POD", sys.Scheme())
	}
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Scheme: "bogus"},
		{Disks: 2},        // too few for RAID5
		{StripeUnitKB: 6}, // not chunk-aligned
		{MemoryMB: -1},    // negative budget
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := New(Config{Disks: 2, Layout: "raid0"}); err != nil {
		t.Errorf("2-disk RAID0 should be accepted: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, scheme := range Schemes() {
		sys, err := New(Config{Scheme: scheme, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Do(wr(0, 100, 11, 22, 33))
		if err != nil || res.Service <= 0 {
			t.Fatalf("%s: write service=%d err=%v", scheme, res.Service, err)
		}
		res, err = sys.Do(rd(1_000_000, 100, 3))
		if err != nil || res.Service <= 0 {
			t.Fatalf("%s: read service=%d err=%v", scheme, res.Service, err)
		}
		if res.Complete != res.Start+res.Service || res.Sojourn != res.Service {
			t.Fatalf("%s: inconsistent result %+v", scheme, res)
		}
		for i, want := range []uint64{11, 22, 33} {
			got, ok := sys.ReadBack(100 + uint64(i))
			if !ok || got != want {
				t.Fatalf("%s: readback lba %d = %d,%v want %d", scheme, 100+i, got, ok, want)
			}
		}
	}
}

func TestTimeOrderingEnforced(t *testing.T) {
	sys, _ := New(Config{})
	if _, err := sys.Do(wr(1000, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Do(wr(500, 1, 2)); err == nil {
		t.Fatal("out-of-order request must be rejected")
	}
}

func TestMalformedRequestsRejected(t *testing.T) {
	sys, _ := New(Config{})
	if _, err := sys.Do(wr(0, 0)); err == nil {
		t.Fatal("empty write must fail")
	}
	if _, err := sys.Do(rd(0, 0, 0)); err == nil {
		t.Fatal("empty read must fail")
	}
	if _, err := sys.Do(&Request{Op: OpRead, Chunks: 1, Content: []ContentID{1}}); err == nil {
		t.Fatal("read carrying content must fail")
	}
	if _, err := sys.Do(&Request{Time: -1, Op: OpWrite, Content: []ContentID{1}}); err == nil {
		t.Fatal("negative time must fail")
	}
}

// TestRequestRoundTrip pins the Request/Do surface the removed
// positional wrappers migrated to.
func TestRequestRoundTrip(t *testing.T) {
	sys, err := New(Config{Scheme: SchemeSelectDedupe, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Do(&Request{Time: 0, Op: OpWrite, LBA: 0, Content: []ContentID{5, 6}})
	if err != nil || res.Service <= 0 {
		t.Fatalf("write rt=%d err=%v", res.Service, err)
	}
	res, err = sys.Do(&Request{Time: 1000, Op: OpRead, LBA: 0, Chunks: 2})
	if err != nil || res.Service <= 0 {
		t.Fatalf("read rt=%d err=%v", res.Service, err)
	}
	if got, ok := sys.ReadBack(1); !ok || got != 6 {
		t.Fatalf("readback = %d,%v", got, ok)
	}
}

func TestParseScheme(t *testing.T) {
	for in, want := range map[string]Scheme{
		"pod": SchemePOD, "POD": SchemePOD,
		"select-dedupe": SchemeSelectDedupe, "SelectDedupe": SchemeSelectDedupe,
		"select_dedupe": SchemeSelectDedupe, "full dedupe": SchemeFullDedupe,
		"idedup": SchemeIDedup, "i/o-dedup": SchemeIODedup, "iodedup": SchemeIODedup,
		"post-process": SchemePostProcess, "native": SchemeNative,
	} {
		got, err := ParseScheme(in)
		if err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "zfs", "dedupe"} {
		if _, err := ParseScheme(bad); err == nil {
			t.Errorf("ParseScheme(%q) must fail", bad)
		}
	}
}

func TestDeduplicationVisibleThroughAPI(t *testing.T) {
	sys, err := New(Config{Scheme: SchemeSelectDedupe, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.Do(wr(0, 0, 7))
	sys.Do(wr(1_000_000, 500, 7)) // same content elsewhere
	st := sys.Stats()
	if st.WritesRemovedPct != 50 {
		t.Fatalf("removed = %.1f%%, want 50%%", st.WritesRemovedPct)
	}
	if st.Category1 != 1 {
		t.Fatalf("cat1 = %d, want 1", st.Category1)
	}
	if st.UsedBlocks != 1 {
		t.Fatalf("used = %d blocks, want 1 (deduplicated)", st.UsedBlocks)
	}
}

func TestGenerateWorkload(t *testing.T) {
	reqs, warm, err := GenerateWorkload("web-vm", 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 || warm < 0 || warm >= len(reqs) {
		t.Fatalf("len=%d warm=%d", len(reqs), warm)
	}
	if _, _, err := GenerateWorkload("nope", 1); err == nil {
		t.Fatal("unknown workload must fail")
	}
	if _, _, err := GenerateWorkload("mail", 0); err == nil {
		t.Fatal("zero scale must fail")
	}
}

func TestReplayAndReset(t *testing.T) {
	reqs, warm, err := GenerateWorkload("homes", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{Scheme: SchemePOD, DiskBlocks: 1 << 18, MemoryMB: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Replay(reqs[:warm]); err != nil {
		t.Fatal(err)
	}
	sys.ResetStats()
	sum, err := sys.Replay(reqs[warm:])
	if err != nil {
		t.Fatal(err)
	}
	if sum.Reads+sum.Writes != int64(len(reqs)-warm) {
		t.Fatalf("measured %d requests, want %d", sum.Reads+sum.Writes, len(reqs)-warm)
	}
	if !strings.Contains(sum.String(), "POD") {
		t.Fatalf("summary string = %q", sum.String())
	}
}

func TestWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 3 || names[0] != "web-vm" || names[2] != "mail" {
		t.Fatalf("names = %v", names)
	}
}

func TestRunExperimentSmall(t *testing.T) {
	out, err := RunExperiment("table2", 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"web-vm", "homes", "mail"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
	if _, err := RunExperiment("bogus", 0.01, 1); err == nil {
		t.Fatal("unknown experiment must fail")
	}
	if _, err := RunExperiment("fig8", -1, 1); err == nil {
		t.Fatal("bad scale must fail")
	}
	out, err = RunExperiment("table1", 1, 1)
	if err != nil || !strings.Contains(out, "POD") {
		t.Fatalf("table1: %v", err)
	}
}

func TestExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 12 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestCrashRecoveryThroughAPI(t *testing.T) {
	sys, err := New(Config{Scheme: SchemePOD, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.Do(wr(0, 0, 1, 2))
	sys.Do(wr(1_000_000, 100, 1, 2)) // deduplicated copy
	n, err := sys.CrashAndRecover()
	if err != nil || n == 0 {
		t.Fatalf("recover: n=%d err=%v", n, err)
	}
	for _, lba := range []uint64{0, 1, 100, 101} {
		want := uint64(1 + lba%2)
		if got, ok := sys.ReadBack(lba); !ok || got != want {
			t.Fatalf("lba %d = %d,%v want %d", lba, got, ok, want)
		}
	}
	// unsupported scheme reports an error
	nat, _ := New(Config{Scheme: SchemeNative})
	if _, err := nat.CrashAndRecover(); err == nil {
		t.Fatal("Native must not claim recovery support")
	}
}

func TestSchemesComparable(t *testing.T) {
	// the paper's headline, through the public API: POD beats Native
	// on a redundant workload
	reqs, warm, _ := GenerateWorkload("web-vm", 0.02)
	results := map[Scheme]Summary{}
	for _, scheme := range []Scheme{SchemeNative, SchemePOD} {
		sys, err := New(Config{Scheme: scheme, MemoryMB: 1})
		if err != nil {
			t.Fatal(err)
		}
		sys.Replay(reqs[:warm])
		sys.ResetStats()
		sum, err := sys.Replay(reqs[warm:])
		if err != nil {
			t.Fatal(err)
		}
		results[scheme] = sum
	}
	if results[SchemePOD].MeanWriteMicros >= results[SchemeNative].MeanWriteMicros {
		t.Errorf("POD write RT (%.0fµs) must beat Native (%.0fµs)",
			results[SchemePOD].MeanWriteMicros, results[SchemeNative].MeanWriteMicros)
	}
	if results[SchemePOD].UsedBlocks >= results[SchemeNative].UsedBlocks {
		t.Errorf("POD capacity (%d) must beat Native (%d)",
			results[SchemePOD].UsedBlocks, results[SchemeNative].UsedBlocks)
	}
}

func TestNVRAMDisabledBlocksRecovery(t *testing.T) {
	sys, err := New(Config{Scheme: SchemePOD, NVRAMKB: -1})
	if err != nil {
		t.Fatal(err)
	}
	sys.Do(wr(0, 0, 1))
	if _, err := sys.CrashAndRecover(); err == nil {
		t.Fatal("recovery must fail with journaling disabled")
	}
}

func TestLayoutSelection(t *testing.T) {
	if _, err := New(Config{Layout: "raid1", Disks: 4}); err != nil {
		t.Fatalf("raid1: %v", err)
	}
	if _, err := New(Config{Layout: "raid1", Disks: 3}); err == nil {
		t.Fatal("odd-disk raid1 must fail")
	}
	if _, err := New(Config{Layout: "zfs"}); err == nil {
		t.Fatal("unknown layout must fail")
	}
	sys, err := New(Config{Layout: "raid0", Disks: 1, Scheme: SchemeNative})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Do(wr(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestCleanerConfigAccepted(t *testing.T) {
	sys, err := New(Config{Scheme: SchemePOD, Cleaner: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	for i := 0; i < 200; i++ {
		now += 20_000
		if _, err := sys.Do(wr(now, uint64(i%50)*4, ContentID(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	// consistency preserved under churn with the cleaner armed
	for i := 150; i < 200; i++ {
		lba := uint64(i%50) * 4
		if _, ok := sys.ReadBack(lba); !ok {
			t.Fatalf("lba %d lost", lba)
		}
	}
}
