// Webserver: replay the web-vm workload — the paper's virtual-machine
// web-server trace — against every storage scheme and compare the
// results, reproducing the shape of the paper's Figures 8, 9 and 11 on
// one workload.
//
//	go run ./examples/webserver [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	pod "github.com/pod-dedup/pod"
)

func main() {
	scale := flag.Float64("scale", 0.1, "trace scale (1.0 = the paper's 154,105 requests)")
	flag.Parse()

	reqs, warm, err := pod.GenerateWorkload("web-vm", *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web-vm: %d requests (%d warm-up), two webservers in a VM\n\n", len(reqs), warm)

	// Memory scales with the trace so cache pressure matches the
	// full-size experiment.
	memMB := int(8 * *scale)
	if memMB < 1 {
		memMB = 1
	}

	var native pod.Summary
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\twrite RT\tread RT\twrites removed\tblocks used\tvs Native")
	for _, scheme := range pod.Schemes() {
		sys, err := pod.New(pod.Config{Scheme: scheme, MemoryMB: memMB})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.Replay(reqs[:warm]); err != nil {
			log.Fatal(err)
		}
		sys.ResetStats()
		sum, err := sys.Replay(reqs[warm:])
		if err != nil {
			log.Fatal(err)
		}
		if scheme == pod.SchemeNative {
			native = sum
		}
		mean := func(s pod.Summary) float64 {
			n := float64(s.Reads + s.Writes)
			return (s.MeanWriteMicros*float64(s.Writes) + s.MeanReadMicros*float64(s.Reads)) / n
		}
		fmt.Fprintf(w, "%s\t%.2fms\t%.2fms\t%.1f%%\t%d\t%.1f%%\n",
			scheme,
			sum.MeanWriteMicros/1000, sum.MeanReadMicros/1000,
			sum.WritesRemovedPct, sum.UsedBlocks,
			100*mean(sum)/mean(native))
	}
	w.Flush()
	fmt.Println("\n(lower 'vs Native' is better; the paper reports Select-Dedupe at ~46% on web-vm)")
}
