// Crashrecovery: demonstrate the Map table's NVRAM durability (§IV-D2).
//
// POD keeps the LBA→PBA Map table in non-volatile RAM precisely so that
// deduplicated state survives power failure: a deduplicated write's
// only record IS the mapping — lose it and the data is unreachable even
// though every byte sits intact on disk. This example writes data,
// deduplicates some of it, pulls the plug, restarts, and shows that
// every acknowledged write is still readable.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"

	pod "github.com/pod-dedup/pod"
)

func main() {
	sys, err := pod.New(pod.Config{Scheme: pod.SchemePOD, Verify: true})
	if err != nil {
		log.Fatal(err)
	}

	// a document, saved...
	doc := []pod.ContentID{501, 502, 503, 504}
	now := int64(0)
	must(sys.Do(&pod.Request{Time: now, Op: pod.OpWrite, LBA: 0, Content: doc}))

	// ...then "saved as" a copy: fully deduplicated, the copy exists
	// only as Map-table entries in NVRAM
	now += pod.MicrosPerSecond
	must(sys.Do(&pod.Request{Time: now, Op: pod.OpWrite, LBA: 4096, Content: doc}))

	// plus some unique data for good measure
	now += pod.MicrosPerSecond
	must(sys.Do(&pod.Request{Time: now, Op: pod.OpWrite, LBA: 8192, Content: []pod.ContentID{900, 901}}))

	before := sys.Stats()
	fmt.Printf("before the crash:  %d writes acked, %.0f%% removed, %d blocks used\n",
		before.Writes, before.WritesRemovedPct, before.UsedBlocks)

	// ⚡ power failure + restart: DRAM (index cache, read cache) is
	// gone; the Map table journal in NVRAM survives
	records, err := sys.CrashAndRecover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered:         %d journal records replayed\n", records)

	// every acknowledged write — including the copy that never touched
	// the disk — reads back intact
	checks := map[uint64]uint64{0: 501, 4096: 501, 4099: 504, 8192: 900, 8193: 901}
	for lba, want := range checks {
		got, ok := sys.ReadBack(lba)
		if !ok || got != want {
			log.Fatalf("lba %d lost after recovery: got %d,%v want %d", lba, got, ok, want)
		}
	}
	fmt.Println("verified:          all acknowledged writes intact (including the deduplicated copy)")

	// and the system keeps serving I/O
	now += pod.MicrosPerSecond
	if _, err := sys.Do(&pod.Request{Time: now, Op: pod.OpRead, LBA: 4096, Chunks: 4}); err != nil {
		log.Fatal(err)
	}
	now += pod.MicrosPerSecond
	must(sys.Do(&pod.Request{Time: now, Op: pod.OpWrite, LBA: 12000, Content: []pod.ContentID{777}}))
	fmt.Println("post-recovery I/O: OK")
}

func must(_ pod.Result, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
