// Quickstart: build a POD storage system, write some data (twice), and
// watch the deduplication layer eliminate the redundant I/O.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pod "github.com/pod-dedup/pod"
)

func main() {
	sys, err := pod.New(pod.Config{Scheme: pod.SchemePOD, Verify: true})
	if err != nil {
		log.Fatal(err)
	}

	// A "file" of 8 chunks (32 KiB). Content IDs stand for chunk
	// contents: equal IDs are byte-identical chunks.
	file := []pod.ContentID{101, 102, 103, 104, 105, 106, 107, 108}

	// First write: all content is new, so everything hits the disks.
	now := int64(0)
	res, err := sys.Do(&pod.Request{Time: now, Op: pod.OpWrite, LBA: 0, Content: file})
	must(err)
	fmt.Printf("initial write of 8 chunks:       %6.2f ms (cold: full disk write)\n", ms(res.Service))

	// Second write of the same content at a different location — a VM
	// image clone, a mail blast, a re-saved document. POD classifies
	// this as a category-1 fully redundant request and absorbs it in
	// the Map table: no data touches the disks.
	now += pod.MicrosPerSecond
	res, err = sys.Do(&pod.Request{Time: now, Op: pod.OpWrite, LBA: 5000, Content: file})
	must(err)
	fmt.Printf("duplicate write elsewhere:       %6.2f ms (deduplicated: no disk I/O)\n", ms(res.Service))

	// A small 4 KiB redundant write — the case capacity-oriented
	// schemes like iDedup skip and POD exists to eliminate.
	now += pod.MicrosPerSecond
	res, err = sys.Do(&pod.Request{Time: now, Op: pod.OpWrite, LBA: 9000, Content: []pod.ContentID{103}})
	must(err)
	fmt.Printf("small duplicate write:           %6.2f ms (category 1: eliminated)\n", ms(res.Service))

	// Reads are served through the Map table; both copies resolve to
	// the same physical blocks.
	now += pod.MicrosPerSecond
	res, err = sys.Do(&pod.Request{Time: now, Op: pod.OpRead, LBA: 5000, Chunks: 8})
	must(err)
	fmt.Printf("read of the deduplicated copy:   %6.2f ms\n", ms(res.Service))

	if id, ok := sys.ReadBack(5000); !ok || id != 101 {
		log.Fatalf("consistency violation: lba 5000 holds %d", id)
	}

	fmt.Println()
	fmt.Println(sys.Stats())
	fmt.Printf("physical blocks used: %d (wrote %d logical chunks)\n",
		sys.UsedBlocks(), 8+8+1)
}

func ms(us int64) float64 { return float64(us) / 1000 }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
