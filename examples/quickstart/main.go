// Quickstart: build a POD storage system, write some data (twice), and
// watch the deduplication layer eliminate the redundant I/O.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pod "github.com/pod-dedup/pod"
)

func main() {
	sys, err := pod.New(pod.Config{Scheme: pod.SchemePOD, Verify: true})
	if err != nil {
		log.Fatal(err)
	}

	// A "file" of 8 chunks (32 KiB). Content IDs stand for chunk
	// contents: equal IDs are byte-identical chunks.
	file := []uint64{101, 102, 103, 104, 105, 106, 107, 108}

	// First write: all content is new, so everything hits the disks.
	now := int64(0)
	rt, err := sys.Write(now, 0, file)
	must(err)
	fmt.Printf("initial write of 8 chunks:       %6.2f ms (cold: full disk write)\n", ms(rt))

	// Second write of the same content at a different location — a VM
	// image clone, a mail blast, a re-saved document. POD classifies
	// this as a category-1 fully redundant request and absorbs it in
	// the Map table: no data touches the disks.
	now += pod.MicrosPerSecond
	rt, err = sys.Write(now, 5000, file)
	must(err)
	fmt.Printf("duplicate write elsewhere:       %6.2f ms (deduplicated: no disk I/O)\n", ms(rt))

	// A small 4 KiB redundant write — the case capacity-oriented
	// schemes like iDedup skip and POD exists to eliminate.
	now += pod.MicrosPerSecond
	rt, err = sys.Write(now, 9000, []uint64{103})
	must(err)
	fmt.Printf("small duplicate write:           %6.2f ms (category 1: eliminated)\n", ms(rt))

	// Reads are served through the Map table; both copies resolve to
	// the same physical blocks.
	now += pod.MicrosPerSecond
	rt, err = sys.Read(now, 5000, 8)
	must(err)
	fmt.Printf("read of the deduplicated copy:   %6.2f ms\n", ms(rt))

	if id, ok := sys.ReadBack(5000); !ok || id != 101 {
		log.Fatalf("consistency violation: lba 5000 holds %d", id)
	}

	fmt.Println()
	fmt.Println(sys.Stats())
	fmt.Printf("physical blocks used: %d (wrote %d logical chunks)\n",
		sys.UsedBlocks(), 8+8+1)
}

func ms(us int64) float64 { return float64(us) / 1000 }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
