// Adaptivecache: demonstrate iCache, POD's adaptive partitioning of
// DRAM between the fingerprint index cache and the read cache (§III-C).
//
// The workload alternates write-intensive and read-intensive bursts
// (the I/O burstiness of primary storage, §II-B). A fixed 50/50 split
// (Select-Dedupe) wastes read cache during write storms and index cache
// during read storms; POD's Access Monitor detects each shift through
// ghost-cache hits and repartitions.
//
//	go run ./examples/adaptivecache
package main

import (
	"fmt"
	"log"
	"math/rand"

	pod "github.com/pod-dedup/pod"
)

const (
	phases     = 8
	perPhase   = 1500
	hotContent = 12000 // distinct hot chunks, beyond a 50/50 split's index capacity
)

func main() {
	for _, scheme := range []pod.Scheme{pod.SchemeSelectDedupe, pod.SchemePOD} {
		sys, err := pod.New(pod.Config{Scheme: scheme, MemoryMB: 1})
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))

		now := int64(0)
		nextLBA := uint64(0)
		var written []uint64 // LBAs with known content
		content := func() pod.ContentID { return pod.ContentID(rng.Intn(hotContent)) + 1 }

		for phase := 0; phase < phases; phase++ {
			writeHeavy := phase%2 == 0
			for i := 0; i < perPhase; i++ {
				now += int64(rng.Intn(9000)) + 7000
				doWrite := rng.Float64() < 0.9
				if !writeHeavy {
					doWrite = rng.Float64() < 0.2
				}
				if doWrite || len(written) == 0 {
					n := 1
					if rng.Intn(5) == 0 {
						n = 2
					}
					ids := make([]pod.ContentID, n)
					for j := range ids {
						ids[j] = content()
					}
					if _, err := sys.Do(&pod.Request{Time: now, Op: pod.OpWrite, LBA: nextLBA, Content: ids}); err != nil {
						log.Fatal(err)
					}
					written = append(written, nextLBA)
					nextLBA += uint64(n)
				} else {
					// inbox-style reads: recent data only, so a modest
					// read cache suffices and the index is where extra
					// DRAM pays off during write bursts
					window := 300
					if window > len(written) {
						window = len(written)
					}
					lba := written[len(written)-window+rng.Intn(window)]
					if _, err := sys.Do(&pod.Request{Time: now, Op: pod.OpRead, LBA: lba, Chunks: 1}); err != nil {
						log.Fatal(err)
					}
				}
			}
			now += 2 * pod.MicrosPerSecond // idle gap between phases
		}

		sum := sys.Stats()
		fmt.Printf("%-14s  writes removed %5.1f%%   read-cache hits %5.1f%%   write RT %6.2fms   read RT %6.2fms\n",
			scheme, sum.WritesRemovedPct, sum.ReadCacheHitPct,
			sum.MeanWriteMicros/1000, sum.MeanReadMicros/1000)
	}
	fmt.Println("\nPOD's Access Monitor sees the ghost-cache hits pile up when the burst")
	fmt.Println("direction flips and repartitions: the read cache grows during read bursts")
	fmt.Println("(higher hit ratio, faster reads) at no cost to write-side deduplication —")
	fmt.Println("exactly the paper's §III-C behaviour (expanding the read cache in the")
	fmt.Println("face of read bursts).")
}
