// Mailserver: the paper's headline scenario. A mail server writes the
// same message body to thousands of mailboxes (a mail blast) while
// users read their inboxes. POD eliminates the redundant writes on the
// critical path; Native grinds through every copy.
//
// Unlike the other examples this one builds its workload from scratch
// with the public API — no trace generator — showing how to model an
// application directly.
//
//	go run ./examples/mailserver [-mailboxes 2000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	pod "github.com/pod-dedup/pod"
)

func main() {
	mailboxes := flag.Int("mailboxes", 2000, "recipients of the mail blast")
	msgChunks := flag.Int("msg-chunks", 4, "message size in 4 KiB chunks")
	flag.Parse()

	for _, scheme := range []pod.Scheme{pod.SchemeNative, pod.SchemeIDedup, pod.SchemePOD} {
		sys, err := pod.New(pod.Config{Scheme: scheme, MemoryMB: 16, Verify: true})
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))

		// The blast: one message body, delivered to every mailbox at a
		// distinct location, interleaved with inbox reads.
		body := make([]pod.ContentID, *msgChunks)
		for i := range body {
			body[i] = pod.ContentID(1_000_000 + i)
		}
		now := int64(0)
		var delivered []uint64
		for m := 0; m < *mailboxes; m++ {
			now += int64(rng.Intn(12000)) + 6000
			mbox := uint64(m) * 64 // each mailbox owns a 256 KiB region
			if _, err := sys.Do(&pod.Request{Time: now, Op: pod.OpWrite, LBA: mbox, Content: body}); err != nil {
				log.Fatal(err)
			}
			delivered = append(delivered, mbox)
			// every few deliveries, someone reads an inbox
			if m%8 == 0 && len(delivered) > 1 {
				now += int64(rng.Intn(6000)) + 2000
				victim := delivered[rng.Intn(len(delivered))]
				if _, err := sys.Do(&pod.Request{Time: now, Op: pod.OpRead, LBA: victim, Chunks: *msgChunks}); err != nil {
					log.Fatal(err)
				}
			}
		}

		// verify one delivery survived deduplication intact
		if id, ok := sys.ReadBack(delivered[len(delivered)/2]); !ok || id != uint64(body[0]) {
			log.Fatalf("%s: mailbox corrupted (got %d)", scheme, id)
		}

		sum := sys.Stats()
		fmt.Printf("%-14s  write RT %7.2fms   read RT %6.2fms   writes removed %5.1f%%   blocks %6d\n",
			scheme, sum.MeanWriteMicros/1000, sum.MeanReadMicros/1000,
			sum.WritesRemovedPct, sum.UsedBlocks)
	}
	fmt.Println("\nPOD stores one copy of the message and absorbs every redundant delivery;")
	fmt.Println("iDedup bypasses them (the message is below its sequence threshold) and")
	fmt.Println("Native pays full price for every copy.")
}
