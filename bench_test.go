package pod

// The benchmark harness regenerates every table and figure of the POD
// paper's evaluation (go test -bench=. -benchmem). Each benchmark runs
// the corresponding experiment end-to-end at a reduced trace scale
// (BENCH_SCALE below; cmd/podbench reproduces the full-scale numbers)
// and reports the experiment's headline values as custom metrics, so a
// benchmark run doubles as a regression check on the reproduced shapes.

import (
	"runtime"
	"testing"

	"github.com/pod-dedup/pod/internal/experiments"
	"github.com/pod-dedup/pod/internal/raid"
)

type raidLevel = raid.Level

// benchScale keeps a full table/figure regeneration around a second.
const benchScale = 0.1

func newEnv() *experiments.Env {
	return experiments.NewEnv(benchScale, runtime.GOMAXPROCS(0))
}

func metric(b *testing.B, rows []experiments.NormRow, engine, trace, unit string) {
	b.Helper()
	for _, r := range rows {
		if r.Engine == engine && r.Trace == trace {
			b.ReportMetric(r.Value, unit)
			return
		}
	}
}

// BenchmarkTable2 regenerates the trace-characteristics table.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv()
		_, chars := env.Table2()
		b.ReportMetric(chars[2].AvgReqKB, "mail-avg-KB")
		b.ReportMetric(chars[0].WriteRatio, "webvm-write-%")
	}
}

// BenchmarkFig1 regenerates the redundancy-by-size distribution.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv()
		_, buckets := env.Fig1()
		small := buckets["web-vm"][0]
		b.ReportMetric(100*float64(small.Redundant)/float64(small.Total), "webvm-4KB-redundant-%")
	}
}

// BenchmarkFig2 regenerates the I/O vs capacity redundancy split.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv()
		_, rows := env.Fig2()
		for _, r := range rows {
			if r.Trace == "mail" {
				b.ReportMetric(r.IORedundancyPct, "mail-io-redundancy-%")
				b.ReportMetric(r.SameLBAPct, "mail-same-lba-%")
			}
		}
	}
}

// BenchmarkFig3 sweeps the static index/read cache partition on mail
// under Full-Dedupe.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv()
		_, rows := env.Fig3(nil)
		b.ReportMetric(rows[0].WriteRTms, "write-ms-at-10%")
		b.ReportMetric(rows[len(rows)-1].WriteRTms, "write-ms-at-90%")
		b.ReportMetric(rows[0].ReadRTms, "read-ms-at-10%")
		b.ReportMetric(rows[len(rows)-1].ReadRTms, "read-ms-at-90%")
	}
}

// BenchmarkFig8 regenerates the normalized overall response times.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv()
		_, rows := env.Fig8()
		metric(b, rows, experiments.SelectDedupe, "web-vm", "webvm-select-%")
		metric(b, rows, experiments.SelectDedupe, "mail", "mail-select-%")
		metric(b, rows, experiments.FullDedupe, "homes", "homes-full-%")
	}
}

// BenchmarkFig9Write regenerates the normalized write response times.
func BenchmarkFig9Write(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv()
		_, rows := env.Fig9Write()
		metric(b, rows, experiments.SelectDedupe, "mail", "mail-select-%")
		metric(b, rows, experiments.FullDedupe, "homes", "homes-full-%")
	}
}

// BenchmarkFig9Read regenerates the normalized read response times.
func BenchmarkFig9Read(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv()
		_, rows := env.Fig9Read()
		metric(b, rows, experiments.FullDedupe, "homes", "homes-full-%")
		metric(b, rows, experiments.SelectDedupe, "web-vm", "webvm-select-%")
	}
}

// BenchmarkFig10 regenerates the normalized capacity usage.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv()
		_, rows := env.Fig10()
		metric(b, rows, experiments.FullDedupe, "mail", "mail-full-%")
		metric(b, rows, experiments.SelectDedupe, "mail", "mail-select-%")
		metric(b, rows, experiments.IDedup, "mail", "mail-idedup-%")
	}
}

// BenchmarkFig11 regenerates the write-removal percentages.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv()
		_, rows := env.Fig11()
		metric(b, rows, experiments.POD, "mail", "mail-pod-removed-%")
		metric(b, rows, experiments.SelectDedupe, "mail", "mail-select-removed-%")
		metric(b, rows, experiments.IDedup, "mail", "mail-idedup-removed-%")
	}
}

// BenchmarkOverhead regenerates §IV-D (NVRAM footprint, hash cost).
func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv()
		_, rows, sha1us := env.Overhead()
		b.ReportMetric(float64(rows[2].NVRAMPeakBytes)/(1<<20), "mail-nvram-MB")
		b.ReportMetric(sha1us, "sha1-us-per-4KB")
	}
}

// --- ablations beyond the paper's figures ---

// BenchmarkAblationThreshold sweeps Select-Dedupe's partial-redundancy
// threshold (the paper fixes it at 3) on the homes trace, where
// category-2 traffic is heaviest.
func BenchmarkAblationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, th := range []int{1, 3, 6} {
			env := newEnv()
			rt, removed := env.ThresholdPoint("homes", th)
			b.ReportMetric(rt/1000, "ms-th"+string(rune('0'+th)))
			_ = removed
		}
	}
}

// BenchmarkAblationStripeUnit sweeps the RAID5 stripe unit under POD on
// web-vm: larger units shift small writes toward read-modify-write.
func BenchmarkAblationStripeUnit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, kb := range []int{16, 64, 256} {
			env := newEnv()
			rt := env.StripeUnitPoint("web-vm", kb)
			b.ReportMetric(rt/1000, "ms-"+itoa(kb)+"KB")
		}
	}
}

// BenchmarkAblationAdaptive compares the fixed 50/50 partition against
// iCache adaptation (Select-Dedupe vs POD) across the three traces.
func BenchmarkAblationAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv()
		env.EnsureMatrix([]string{experiments.SelectDedupe, experiments.POD}, experiments.TraceNames)
		for _, tn := range experiments.TraceNames {
			sd := env.Result(experiments.SelectDedupe, tn)
			pd := env.Result(experiments.POD, tn)
			b.ReportMetric(pd.Stats.WriteRemovalPct()-sd.Stats.WriteRemovalPct(), tn+"-removal-delta")
		}
	}
}

// --- micro-benchmarks of the write path itself ---

func benchWritePath(b *testing.B, scheme Scheme) {
	sys, err := New(Config{Scheme: scheme, DiskBlocks: 1 << 20, MemoryMB: 8})
	if err != nil {
		b.Fatal(err)
	}
	now := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 1000
		// alternate fresh and duplicate content
		id := ContentID(i)
		if i%2 == 1 {
			id = ContentID(i - 1)
		}
		req := Request{Time: now, Op: OpWrite, LBA: uint64(i%100000) * 4, Content: []ContentID{id, id + 1, id + 2, id + 3}}
		if _, err := sys.Do(&req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWritePathNative(b *testing.B)       { benchWritePath(b, SchemeNative) }
func BenchmarkWritePathFullDedupe(b *testing.B)   { benchWritePath(b, SchemeFullDedupe) }
func BenchmarkWritePathIDedup(b *testing.B)       { benchWritePath(b, SchemeIDedup) }
func BenchmarkWritePathSelectDedupe(b *testing.B) { benchWritePath(b, SchemeSelectDedupe) }
func BenchmarkWritePathPOD(b *testing.B)          { benchWritePath(b, SchemePOD) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationLayout compares Native vs POD write RT across RAID
// layouts (the RMW penalty quantified).
func BenchmarkAblationLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv()
		for _, l := range []struct {
			name  string
			level raidLevel
		}{{"raid0", 0}, {"raid1", 2}, {"raid5", 1}} {
			rt := env.LayoutPoint(experiments.POD, "web-vm", l.level)
			b.ReportMetric(rt/1000, l.name+"-pod-ms")
		}
	}
}

// BenchmarkAblationDupSweep measures POD write RT against workload
// redundancy.
func BenchmarkAblationDupSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv()
		b.ReportMetric(env.DupSweepPoint(experiments.POD, 0)/1000, "ms-at-0pct")
		b.ReportMetric(env.DupSweepPoint(experiments.POD, 0.9)/1000, "ms-at-90pct")
	}
}

// BenchmarkCrashRecovery measures wall-clock recovery speed: journal
// replay plus allocator/store reconstruction for a populated system.
func BenchmarkCrashRecovery(b *testing.B) {
	reqs, _, err := GenerateWorkload("homes", 0.1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := New(Config{Scheme: SchemePOD, MemoryMB: 2})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Replay(reqs); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := sys.CrashAndRecover(); err != nil {
			b.Fatal(err)
		}
	}
}
